//! Lightweight event recording for debugging and tests.

use crate::node::NodeId;

/// Kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A message was delivered.
    Deliver,
    /// A message was dropped by fault injection.
    Drop,
    /// A node reported done this round.
    Done,
}

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Round in which the event happened.
    pub round: u32,
    /// Kind of event.
    pub kind: EventKind,
    /// Source node (for `Done`, the node itself).
    pub src: NodeId,
    /// Destination node (for `Done`, the node itself).
    pub dst: NodeId,
}

/// Collects [`Event`]s when enabled; a disabled recorder is free.
///
/// Deliberately an enum so callers on a hot path can match **once** (e.g.
/// once per round) and take a recording-free code path, instead of paying
/// an `enabled` test per message. The engine's delivery loop does exactly
/// that; [`Recorder::record`] remains for convenience off the hot path.
#[derive(Debug, Default)]
pub enum Recorder {
    /// Events are ignored (the default).
    #[default]
    Off,
    /// Events are appended to the buffer.
    On(Vec<Event>),
}

impl Recorder {
    /// A recorder that stores events.
    pub fn enabled() -> Self {
        Recorder::On(Vec::new())
    }

    /// A recorder that ignores events (the default).
    pub fn disabled() -> Self {
        Recorder::Off
    }

    /// Whether events are being stored.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Recorder::On(_))
    }

    /// Records an event if enabled.
    pub fn record(&mut self, event: Event) {
        if let Recorder::On(events) = self {
            events.push(event);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        match self {
            Recorder::Off => &[],
            Recorder::On(events) => events,
        }
    }

    /// Recorded events of a given kind.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events().iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u32, kind: EventKind) -> Event {
        Event { round, kind, src: NodeId::new(0), dst: NodeId::new(1) }
    }

    #[test]
    fn disabled_recorder_ignores() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(ev(0, EventKind::Deliver));
        assert!(r.events().is_empty());
    }

    #[test]
    fn enabled_recorder_stores_in_order() {
        let mut r = Recorder::enabled();
        r.record(ev(0, EventKind::Deliver));
        r.record(ev(1, EventKind::Drop));
        r.record(ev(1, EventKind::Deliver));
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events_of(EventKind::Deliver).count(), 2);
        assert_eq!(r.events_of(EventKind::Drop).count(), 1);
        assert_eq!(r.events()[0].round, 0);
    }
}
