//! # distfl-congest
//!
//! A deterministic, synchronous message-passing simulator for the **CONGEST**
//! model of distributed computing, built as the execution substrate for the
//! distributed facility-location algorithms of Moscibroda–Wattenhofer
//! (PODC 2005) reproduced by the `distfl` workspace.
//!
//! ## Model
//!
//! A network is an undirected graph of `N` nodes. Computation proceeds in
//! synchronous rounds. In every round each node:
//!
//! 1. receives all messages sent to it in the previous round,
//! 2. performs arbitrary local computation, and
//! 3. sends at most one message per incident edge, each of bounded size
//!    (`O(log N)` bits; numeric fields of fixed precision are charged a
//!    constant number of machine words).
//!
//! The simulator *enforces and measures* this discipline: it counts rounds,
//! messages, and message bits; it rejects sends to non-neighbors; and it can
//! either reject or merely record violations of the one-message-per-edge
//! rule. Results are bit-for-bit deterministic for a given master seed,
//! whether execution is serial or parallel.
//!
//! ## Quick example
//!
//! A two-round "ping-pong" protocol on a ring:
//!
//! ```
//! use distfl_congest::{Network, NodeId, NodeLogic, Payload, StepCtx, Topology};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u64);
//! impl Payload for Ping {
//!     fn size_bits(&self) -> u64 { 64 }
//! }
//!
//! struct Echo { heard: u64, done: bool }
//! impl NodeLogic for Echo {
//!     type Msg = Ping;
//!     fn step(&mut self, ctx: &mut StepCtx<'_, Ping>) {
//!         if ctx.round() == 0 {
//!             ctx.broadcast(Ping(u64::from(ctx.id().index() as u32)));
//!         } else {
//!             self.heard = ctx.inbox().iter().map(|(_, m)| m.0).sum();
//!             self.done = true;
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.done }
//! }
//!
//! # fn main() -> Result<(), distfl_congest::CongestError> {
//! let topo = Topology::ring(5)?;
//! let nodes = (0..5).map(|_| Echo { heard: 0, done: false }).collect();
//! let mut net = Network::new(topo, nodes, 42)?;
//! let transcript = net.run(10)?;
//! assert_eq!(transcript.num_rounds(), 2);
//! assert!(net.nodes().iter().all(|n| n.done));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
mod engine;
mod error;
mod fault;
mod message;
mod metrics;
mod node;
mod rng;
pub mod sim;
mod synchronizer;
mod topology;
mod trace;

pub use engine::{CongestConfig, DuplicatePolicy, Network, StepCtx, PARALLEL_MIN_VOLUME};
pub use error::CongestError;
pub use fault::{decode_accusation, encode_accusation, FaultPlan, FaultVerdict};
pub use message::Payload;
pub use metrics::{EngineProfile, RoundStats, StageTimings, Transcript};
pub use sim::{LatencyModel, PartitionWindow, SimConfig, SimReport, Simulator};

// The worker-pool substrate both pipeline stages dispatch to; re-exported
// so callers can hand the engine an explicitly sized pool
// (`CongestConfig::pool`) without depending on `distfl-pool` directly.
pub use distfl_pool::{ScopeStats, WorkerPool};
pub use node::{NodeId, NodeLogic};
pub use rng::NodeRng;
pub use topology::Topology;
pub use trace::{Event, EventKind, Recorder};
