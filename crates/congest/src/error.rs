//! Error types for the simulator.

use std::fmt;

use crate::node::NodeId;

/// Errors produced while building topologies or running a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CongestError {
    /// A node id referenced a node outside the network.
    NodeOutOfRange {
        /// Offending id.
        id: NodeId,
        /// Number of nodes in the network.
        num_nodes: usize,
    },
    /// An edge was declared twice (topologies are simple graphs).
    DuplicateEdge {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// A self-loop was declared (topologies are simple graphs).
    SelfLoop {
        /// The node.
        id: NodeId,
    },
    /// A node tried to send a message to a non-neighbor.
    NotNeighbor {
        /// Sender.
        from: NodeId,
        /// Intended (non-adjacent) recipient.
        to: NodeId,
    },
    /// A node sent more than one message over the same edge in one round
    /// while [`crate::DuplicatePolicy::Reject`] was in force.
    EdgeCongestion {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Round in which the violation occurred.
        round: u32,
    },
    /// A message exceeded the configured size budget while
    /// `max_message_bits` enforcement was on.
    MessageTooLarge {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Declared size of the offending message.
        bits: u64,
        /// The configured limit.
        limit: u64,
    },
    /// `run` hit its round limit before every node reported done.
    RoundLimit {
        /// The limit that was exceeded.
        limit: u32,
        /// How many nodes were still not done.
        pending: usize,
    },
    /// The number of node-logic instances did not match the topology size.
    NodeCountMismatch {
        /// Nodes in the topology.
        topology: usize,
        /// Node-logic instances supplied.
        logics: usize,
    },
    /// A topology constructor was given parameters that make no graph
    /// (for example a ring on fewer than three nodes).
    InvalidTopology {
        /// Human-readable reason.
        reason: String,
    },
    /// A protocol run terminated without producing the result it exists to
    /// compute (for example an aggregate whose root never learned the
    /// value — reachable under message drops or crash-stop schedules).
    ProtocolIncomplete {
        /// Which protocol result was missing.
        what: &'static str,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NodeOutOfRange { id, num_nodes } => {
                write!(f, "node id {id} out of range for network of {num_nodes} nodes")
            }
            CongestError::DuplicateEdge { a, b } => {
                write!(f, "duplicate edge between {a} and {b}")
            }
            CongestError::SelfLoop { id } => write!(f, "self-loop at node {id}"),
            CongestError::NotNeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            CongestError::EdgeCongestion { from, to, round } => {
                write!(
                    f,
                    "more than one message from {from} to {to} in round {round} (CONGEST violation)"
                )
            }
            CongestError::MessageTooLarge { from, to, bits, limit } => {
                write!(
                    f,
                    "message from {from} to {to} is {bits} bits, above the {limit}-bit budget"
                )
            }
            CongestError::RoundLimit { limit, pending } => {
                write!(f, "round limit {limit} reached with {pending} nodes still active")
            }
            CongestError::NodeCountMismatch { topology, logics } => {
                write!(
                    f,
                    "topology has {topology} nodes but {logics} node-logic instances were supplied"
                )
            }
            CongestError::InvalidTopology { reason } => {
                write!(f, "invalid topology: {reason}")
            }
            CongestError::ProtocolIncomplete { what } => {
                write!(f, "protocol terminated without its result: {what}")
            }
        }
    }
}

impl std::error::Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<CongestError> = vec![
            CongestError::NodeOutOfRange { id: NodeId::new(3), num_nodes: 2 },
            CongestError::DuplicateEdge { a: NodeId::new(0), b: NodeId::new(1) },
            CongestError::SelfLoop { id: NodeId::new(0) },
            CongestError::NotNeighbor { from: NodeId::new(0), to: NodeId::new(1) },
            CongestError::EdgeCongestion { from: NodeId::new(0), to: NodeId::new(1), round: 7 },
            CongestError::MessageTooLarge {
                from: NodeId::new(0),
                to: NodeId::new(1),
                bits: 128,
                limit: 64,
            },
            CongestError::RoundLimit { limit: 10, pending: 4 },
            CongestError::NodeCountMismatch { topology: 5, logics: 4 },
            CongestError::InvalidTopology { reason: "empty".into() },
            CongestError::ProtocolIncomplete { what: "bfs aggregate" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CongestError>();
    }
}
