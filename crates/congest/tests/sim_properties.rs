//! Property-based equivalence tests between the discrete-event simulator
//! and the lock-step engine.
//!
//! The α-synchronizer's contract is that virtual time is *invisible* to the
//! protocol: whatever latency distribution, bandwidth cap, partition
//! schedule, fault plan, or crash schedule the simulator runs under, the
//! inbox slices, RNG streams, transcripts, recorded events, and final node
//! states must be bit-identical to a fused-serial [`Network`] run with the
//! same master seed. These tests pin that contract over random topologies.

use proptest::prelude::*;

use distfl_congest::{
    decode_accusation, CongestConfig, Event, FaultPlan, LatencyModel, Network, NodeId, NodeLogic,
    PartitionWindow, SimConfig, Simulator, StepCtx, Topology, Transcript,
};

/// A recipe for a random simple graph: node count plus an edge list.
#[derive(Debug, Clone)]
struct GraphRecipe {
    n: usize,
    edges: Vec<(usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphRecipe> {
    (3usize..12, prop::collection::vec((0usize..12, 0usize..12), 0..30)).prop_map(|(n, raw)| {
        let mut edges: Vec<(usize, usize)> = raw
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        GraphRecipe { n, edges }
    })
}

fn build(recipe: &GraphRecipe) -> Topology {
    Topology::from_edges(
        recipe.n,
        recipe.edges.iter().map(|&(a, b)| (NodeId::new(a as u32), NodeId::new(b as u32))),
    )
    .expect("recipe produces simple graphs")
}

/// One of each latency family, parameterised by the proptest inputs so the
/// sweep covers degenerate (zero-latency), wide-uniform (maximal
/// reordering), and heavy-tailed shapes.
fn latency_strategy() -> impl Strategy<Value = LatencyModel> {
    prop_oneof![
        (0u64..200_000).prop_map(LatencyModel::Constant),
        (0u64..50_000, 1u64..500_000)
            .prop_map(|(lo, span)| LatencyModel::Uniform { lo, hi: lo + span }),
        (1.0f64..100_000.0, 0.05f64..2.0)
            .prop_map(|(median_nanos, sigma)| LatencyModel::LogNormal { median_nanos, sigma }),
    ]
}

fn partition_strategy() -> impl Strategy<Value = Vec<PartitionWindow>> {
    prop::collection::vec((0u64..400_000, 1u64..400_000, 0u32..12), 0..3).prop_map(|raw| {
        raw.into_iter()
            .map(|(start, span, boundary)| PartitionWindow {
                start_nanos: start,
                end_nanos: start + span,
                boundary,
            })
            .collect()
    })
}

/// Records every delivery as `(round, sender, payload)` and carries an
/// evolving state word, so any inbox-order or drop divergence between the
/// two executions cascades loudly into the fingerprint.
struct Scribe {
    rounds: u32,
    state: u64,
    log: Vec<(u32, u32, u64)>,
    done: bool,
}

impl Scribe {
    fn new(rounds: u32) -> Self {
        Scribe { rounds, state: 0, log: Vec::new(), done: false }
    }
}

impl NodeLogic for Scribe {
    type Msg = u64;
    fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
        for &(src, msg) in ctx.inbox() {
            self.log.push((ctx.round(), src.raw(), msg));
            self.state = self.state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(msg);
        }
        // Mix in the per-round node RNG so the test also pins the RNG
        // stream equivalence, not just inbox contents.
        self.state ^= ctx.rng().below(1 << 30);
        if ctx.round() < self.rounds {
            let payload =
                (u64::from(ctx.id().raw()) << 32) | u64::from(ctx.round()) ^ (self.state & 0xffff);
            ctx.broadcast(payload);
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Full externally observable run state: transcript, per-node final state
/// word, delivery log, done flag, plus the recorded event stream.
type RunFingerprint = (Transcript, Vec<(u64, Vec<(u32, u32, u64)>, bool)>, Vec<Event>);

const MASTER_SEED: u64 = 11;

fn engine_fingerprint(
    recipe: &GraphRecipe,
    fault: Option<FaultPlan>,
    crashes: &[(NodeId, u32)],
    rounds: u32,
) -> RunFingerprint {
    let nodes: Vec<Scribe> = (0..recipe.n).map(|_| Scribe::new(rounds)).collect();
    let config = CongestConfig {
        fault,
        crashes: crashes.to_vec(),
        record_events: true,
        ..CongestConfig::default()
    };
    let mut net = Network::with_config(build(recipe), nodes, MASTER_SEED, config).unwrap();
    net.run(rounds + 2).unwrap();
    let events = net.recorder().events().to_vec();
    let (nodes, transcript) = net.into_parts();
    let states = nodes.into_iter().map(|s| (s.state, s.log, s.done)).collect();
    (transcript, states, events)
}

fn sim_fingerprint(recipe: &GraphRecipe, config: SimConfig, rounds: u32) -> RunFingerprint {
    let nodes: Vec<Scribe> = (0..recipe.n).map(|_| Scribe::new(rounds)).collect();
    let mut sim = Simulator::new(build(recipe), nodes, MASTER_SEED, config).unwrap();
    sim.run(rounds + 2).unwrap();
    let events = sim.recorder().events().to_vec();
    let (nodes, transcript) = sim.into_parts();
    let states = nodes.into_iter().map(|s| (s.state, s.log, s.done)).collect();
    (transcript, states, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tentpole property: across random topologies, latency
    /// distributions (hence message reorderings), bandwidth caps,
    /// partition schedules, message-drop fault plans, and crash-stop
    /// schedules, the simulator's transcript, recorded event stream, and
    /// every node's final state must be bit-identical to the fused-serial
    /// lock-step engine's.
    #[test]
    fn sim_matches_lockstep(
        recipe in graph_strategy(),
        latency in latency_strategy(),
        latency_seed in 0u64..1000,
        compute_nanos in 0u64..100_000,
        bandwidth in prop::option::of(1u64..500),
        partitions in partition_strategy(),
        drop_p in 0.0f64..1.0,
        fault_seed in 0u64..1000,
        crash_raw in prop::collection::vec((0usize..12, 0u32..6), 0..4),
        rounds in 1u32..6,
    ) {
        let crashes: Vec<(NodeId, u32)> = crash_raw
            .iter()
            .map(|&(node, round)| (NodeId::new((node % recipe.n) as u32), round))
            .collect();
        let fault = Some(FaultPlan::drop_with_probability(drop_p, fault_seed));
        let reference = engine_fingerprint(&recipe, fault, &crashes, rounds);
        let config = SimConfig {
            latency,
            latency_seed,
            compute_nanos,
            bandwidth_bits_per_us: bandwidth,
            partitions,
            fault,
            crashes,
            record_events: true,
            ..SimConfig::default()
        };
        let simulated = sim_fingerprint(&recipe, config, rounds);
        prop_assert_eq!(&reference.0, &simulated.0, "transcript diverged");
        prop_assert_eq!(&reference.1, &simulated.1, "node state diverged");
        prop_assert_eq!(&reference.2, &simulated.2, "event stream diverged");
    }

    /// Virtual time is deterministic too: two simulator runs with the same
    /// configuration agree on the full [`distfl_congest::SimReport`], not
    /// just the transcript — the event heap's `(time, seq)` ordering
    /// leaves no room for platform- or iteration-order dependence.
    #[test]
    fn sim_replay_is_bit_identical(
        recipe in graph_strategy(),
        latency in latency_strategy(),
        latency_seed in 0u64..1000,
        rounds in 1u32..5,
    ) {
        let run = || {
            let nodes: Vec<Scribe> = (0..recipe.n).map(|_| Scribe::new(rounds)).collect();
            let config = SimConfig {
                latency,
                latency_seed,
                record_events: true,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(build(&recipe), nodes, MASTER_SEED, config).unwrap();
            sim.run(rounds + 2).unwrap();
            let report = sim.report().clone();
            let events = sim.recorder().events().to_vec();
            let (nodes, transcript) = sim.into_parts();
            let states: Vec<(u64, bool)> =
                nodes.into_iter().map(|s| (s.state, s.done)).collect();
            (report, events, transcript, states)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0, "SimReport diverged between replays");
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }

    /// Clean runs (no faults, no losses, no crashes) never produce a
    /// faulty verdict, whatever the timing model does to delivery order.
    #[test]
    fn clean_runs_yield_honest_verdicts(
        recipe in graph_strategy(),
        latency in latency_strategy(),
        latency_seed in 0u64..1000,
        rounds in 1u32..5,
    ) {
        let nodes: Vec<Scribe> = (0..recipe.n).map(|_| Scribe::new(rounds)).collect();
        let config = SimConfig { latency, latency_seed, ..SimConfig::default() };
        let mut sim = Simulator::new(build(&recipe), nodes, MASTER_SEED, config).unwrap();
        sim.run(rounds + 2).unwrap();
        prop_assert!(sim.verdicts().iter().all(|v| !v.is_faulty()));
        let benign = sim
            .accusations()
            .iter()
            .all(|&a| decode_accusation(a).is_none_or(|(_, severity)| severity == 0));
        prop_assert!(benign, "clean run produced a non-zero-severity accusation");
    }
}
