//! Crash-stop failure injection tests.

use distfl_congest::{CongestConfig, Network, NodeId, NodeLogic, StepCtx, Topology};

/// Broadcasts a counter every round until `rounds`, then stops.
struct Beacon {
    rounds: u32,
    heard: u64,
    done: bool,
}

impl NodeLogic for Beacon {
    type Msg = u64;
    fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
        self.heard += ctx.inbox().len() as u64;
        if ctx.round() < self.rounds {
            ctx.broadcast(1);
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

fn net(crashes: Vec<(NodeId, u32)>) -> Network<Beacon> {
    let topo = Topology::ring(6).unwrap();
    let nodes = (0..6).map(|_| Beacon { rounds: 4, heard: 0, done: false }).collect();
    let config = CongestConfig { crashes, ..CongestConfig::default() };
    Network::with_config(topo, nodes, 1, config).unwrap()
}

#[test]
fn crashed_nodes_stop_sending_but_run_completes() {
    let mut healthy = net(Vec::new());
    healthy.run(10).unwrap();

    let mut crashed = net(vec![(NodeId::new(2), 2)]);
    crashed.run(10).unwrap();

    // Node 2 sends in rounds 0..2 only: 2 fewer broadcast rounds x 2
    // neighbors = 4 fewer messages.
    let missing = healthy.transcript().total_messages() - crashed.transcript().total_messages();
    assert_eq!(missing, 4);
    // Its neighbors hear less.
    assert!(crashed.nodes()[1].heard < healthy.nodes()[1].heard);
    // The crashed node never reports done itself, yet the run terminates.
    assert!(!crashed.nodes()[2].done);
}

#[test]
fn crash_at_round_zero_silences_a_node_completely() {
    let mut crashed = net(vec![(NodeId::new(0), 0)]);
    crashed.run(10).unwrap();
    // Node 0 never sends: 4 rounds x 2 neighbors missing.
    assert_eq!(crashed.transcript().total_messages(), 4 * 12 - 8);
    assert_eq!(crashed.nodes()[0].heard, 0, "crashed nodes do not process inboxes");
}

#[test]
fn everyone_crashed_terminates_immediately() {
    let crashes = (0..6).map(|i| (NodeId::new(i), 0)).collect();
    let mut all_crashed = net(crashes);
    let t = all_crashed.run(10).unwrap();
    assert_eq!(t.num_rounds(), 0, "nothing to execute");
}

#[test]
fn crashes_are_deterministic_and_parallel_consistent() {
    let run = |threads: Option<usize>| {
        let topo = Topology::grid(4, 5).unwrap();
        let nodes = (0..20).map(|_| Beacon { rounds: 5, heard: 0, done: false }).collect();
        let config = CongestConfig {
            threads,
            crashes: vec![(NodeId::new(3), 1), (NodeId::new(11), 3)],
            ..CongestConfig::default()
        };
        let mut net = Network::with_config(topo, nodes, 9, config).unwrap();
        net.run(12).unwrap();
        let heard: Vec<u64> = net.nodes().iter().map(|n| n.heard).collect();
        (net.into_transcript(), heard)
    };
    let (ts, hs) = run(None);
    let (tp, hp) = run(Some(4));
    assert_eq!(ts, tp);
    assert_eq!(hs, hp);
}
