//! Property-based tests of the CONGEST engine over random topologies.

use proptest::prelude::*;

use distfl_congest::bfs::{aggregate, AggregateOp};
use distfl_congest::{
    CongestConfig, CongestError, FaultPlan, Network, NodeId, NodeLogic, StepCtx, Topology,
    Transcript, WorkerPool,
};

/// A recipe for a random simple graph: node count plus an edge mask.
#[derive(Debug, Clone)]
struct GraphRecipe {
    n: usize,
    edges: Vec<(usize, usize)>,
}

fn graph_strategy(connected: bool) -> impl Strategy<Value = GraphRecipe> {
    (3usize..12, prop::collection::vec((0usize..12, 0usize..12), 0..30)).prop_map(
        move |(n, raw)| {
            let mut edges: Vec<(usize, usize)> = raw
                .into_iter()
                .map(|(a, b)| (a % n, b % n))
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            if connected {
                // Add a spanning path so the graph is connected.
                for i in 0..n - 1 {
                    edges.push((i, i + 1));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            GraphRecipe { n, edges }
        },
    )
}

/// Like [`graph_strategy`] but with enough nodes (16..40) to clear the
/// engine's `nodes >= 2 * threads` floor at 8 workers, so the pool-backed
/// staged pipeline is genuinely exercised, not silently skipped.
fn big_graph_strategy() -> impl Strategy<Value = GraphRecipe> {
    (16usize..40, prop::collection::vec((0usize..40, 0usize..40), 0..140)).prop_map(|(n, raw)| {
        let mut edges: Vec<(usize, usize)> = raw
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        GraphRecipe { n, edges }
    })
}

fn build(recipe: &GraphRecipe) -> Topology {
    Topology::from_edges(
        recipe.n,
        recipe.edges.iter().map(|&(a, b)| (NodeId::new(a as u32), NodeId::new(b as u32))),
    )
    .expect("recipe produces simple graphs")
}

/// Broadcasts its id for a fixed number of rounds; records everything.
struct Chatter {
    rounds: u32,
    sent: u64,
    heard: Vec<u32>,
    done: bool,
}

impl Chatter {
    fn new(rounds: u32) -> Self {
        Chatter { rounds, sent: 0, heard: Vec::new(), done: false }
    }
}

impl NodeLogic for Chatter {
    type Msg = u32;
    fn step(&mut self, ctx: &mut StepCtx<'_, u32>) {
        self.heard.extend(ctx.inbox().iter().map(|(_, m)| *m));
        if ctx.round() < self.rounds {
            ctx.broadcast(ctx.id().raw());
            self.sent += ctx.degree() as u64;
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Records every delivery as `(round, sender, payload)` and carries a
/// per-node evolving state word, so serial-vs-parallel comparisons cover
/// inbox contents *and* final node state bit-for-bit.
struct Scribe {
    rounds: u32,
    state: u64,
    log: Vec<(u32, u32, u64)>,
    done: bool,
}

impl Scribe {
    fn new(rounds: u32) -> Self {
        Scribe { rounds, state: 0, log: Vec::new(), done: false }
    }
}

impl NodeLogic for Scribe {
    type Msg = u64;
    fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
        for &(src, msg) in ctx.inbox() {
            self.log.push((ctx.round(), src.raw(), msg));
            self.state = self.state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(msg);
        }
        if ctx.round() < self.rounds {
            // Payload depends on id, round, and accumulated state so any
            // reordering or drop divergence cascades loudly.
            let payload =
                (u64::from(ctx.id().raw()) << 32) | u64::from(ctx.round()) ^ (self.state & 0xffff);
            ctx.broadcast(payload);
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Full engine state observable from outside after a run.
type RunFingerprint = (Transcript, Vec<(u64, Vec<(u32, u32, u64)>, bool)>);

fn fingerprint_with(recipe: &GraphRecipe, config: CongestConfig, rounds: u32) -> RunFingerprint {
    let nodes: Vec<Scribe> = (0..recipe.n).map(|_| Scribe::new(rounds)).collect();
    let mut net = Network::with_config(build(recipe), nodes, 11, config).unwrap();
    net.run(rounds + 2).unwrap();
    let (nodes, transcript) = net.into_parts();
    let states = nodes.into_iter().map(|s| (s.state, s.log, s.done)).collect();
    (transcript, states)
}

fn fingerprint(
    recipe: &GraphRecipe,
    threads: Option<usize>,
    force_shards: Option<usize>,
    fault: Option<FaultPlan>,
    crashes: &[(NodeId, u32)],
    rounds: u32,
) -> RunFingerprint {
    let config = CongestConfig {
        threads,
        force_shards,
        fault,
        crashes: crashes.to_vec(),
        ..CongestConfig::default()
    };
    fingerprint_with(recipe, config, rounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite of the sharded-delivery rework: across every thread count
    /// the engine supports, random topologies, message-drop fault plans,
    /// and crash-stop schedules must yield bit-identical transcripts,
    /// per-round inbox logs, and final node states.
    #[test]
    fn sharded_delivery_matches_serial_exactly(
        recipe in graph_strategy(false),
        drop_p in 0.0f64..1.0,
        fault_seed in 0u64..1000,
        crash_raw in prop::collection::vec((0usize..12, 0u32..6), 0..4),
        rounds in 1u32..6,
    ) {
        let crashes: Vec<(NodeId, u32)> = crash_raw
            .iter()
            .map(|&(node, round)| (NodeId::new((node % recipe.n) as u32), round))
            .collect();
        let fault = Some(FaultPlan::drop_with_probability(drop_p, fault_seed));
        let serial = fingerprint(&recipe, None, None, fault, &crashes, rounds);
        for threads in [1usize, 2, 4, 8] {
            // Once via the thread config (capped at available cores), once
            // forcing that many delivery shards so the sharded merge path
            // is exercised even on machines with fewer cores.
            for shards in [None, Some(threads)] {
                let parallel = fingerprint(
                    &recipe, Some(threads), shards, fault, &crashes, rounds,
                );
                prop_assert_eq!(
                    &serial.0, &parallel.0,
                    "transcript diverged at {} threads / {:?} shards", threads, shards
                );
                prop_assert_eq!(
                    &serial.1, &parallel.1,
                    "node state diverged at {} threads / {:?} shards", threads, shards
                );
            }
        }
    }

    /// Satellite of the worker-pool migration: pool-backed staged
    /// execution (explicit pools of 1/2/4/8 workers, volume gate zeroed so
    /// every round fans out, with and without forced shard counts) must be
    /// bit-identical to the fused serial path — transcripts, per-round
    /// inbox logs, and final node states — under message-drop faults and
    /// crash-stop schedules. Independent of the host's core count: the
    /// pools spawn real OS threads regardless.
    #[test]
    fn pool_backed_execution_matches_fused_serial(
        recipe in big_graph_strategy(),
        drop_p in 0.0f64..1.0,
        fault_seed in 0u64..1000,
        crash_raw in prop::collection::vec((0usize..40, 0u32..6), 0..4),
        rounds in 1u32..6,
    ) {
        let crashes: Vec<(NodeId, u32)> = crash_raw
            .iter()
            .map(|&(node, round)| (NodeId::new((node % recipe.n) as u32), round))
            .collect();
        let fault = Some(FaultPlan::drop_with_probability(drop_p, fault_seed));
        let serial = fingerprint(&recipe, None, None, fault, &crashes, rounds);
        for workers in [1usize, 2, 4, 8] {
            for shards in [None, Some(workers), Some(3)] {
                let config = CongestConfig {
                    threads: Some(workers),
                    force_shards: shards,
                    pool: Some(WorkerPool::shared(workers)),
                    parallel_min_volume: Some(0),
                    fault,
                    crashes: crashes.clone(),
                    ..CongestConfig::default()
                };
                let pooled = fingerprint_with(&recipe, config, rounds);
                prop_assert_eq!(
                    &serial.0, &pooled.0,
                    "transcript diverged at {} pool workers / {:?} shards", workers, shards
                );
                prop_assert_eq!(
                    &serial.1, &pooled.1,
                    "node state diverged at {} pool workers / {:?} shards", workers, shards
                );
            }
        }
    }

    #[test]
    fn messages_are_conserved(recipe in graph_strategy(false), rounds in 1u32..5) {
        let topo = build(&recipe);
        let nodes: Vec<Chatter> = (0..recipe.n).map(|_| Chatter::new(rounds)).collect();
        let mut net = Network::new(topo, nodes, 1).unwrap();
        net.run(rounds + 2).unwrap();
        let sent: u64 = net.nodes().iter().map(|c| c.sent).sum();
        let heard: u64 = net.nodes().iter().map(|c| c.heard.len() as u64).sum();
        let t = net.transcript();
        prop_assert_eq!(t.total_messages(), sent);
        prop_assert_eq!(heard, sent, "every sent message is delivered exactly once");
        prop_assert_eq!(t.total_dropped(), 0);
    }

    #[test]
    fn parallel_execution_is_identical(recipe in graph_strategy(false), threads in 2usize..6) {
        let topo = build(&recipe);
        let run = |threads: Option<usize>| {
            let nodes: Vec<Chatter> = (0..recipe.n).map(|_| Chatter::new(3)).collect();
            let config = CongestConfig { threads, ..CongestConfig::default() };
            let mut net = Network::with_config(build(&recipe), nodes, 7, config).unwrap();
            net.run(10).unwrap();
            let heard: Vec<Vec<u32>> =
                net.nodes().iter().map(|c| c.heard.clone()).collect();
            (net.into_transcript(), heard)
        };
        let _ = topo;
        let (ts, hs) = run(None);
        let (tp, hp) = run(Some(threads));
        prop_assert_eq!(ts, tp);
        prop_assert_eq!(hs, hp);
    }

    #[test]
    fn drops_scale_with_probability(recipe in graph_strategy(false), seed in 0u64..100) {
        let topo = build(&recipe);
        if topo.num_edges() == 0 {
            return Ok(());
        }
        let run_dropped = |p: f64| {
            let nodes: Vec<Chatter> = (0..recipe.n).map(|_| Chatter::new(4)).collect();
            let config = CongestConfig {
                fault: Some(FaultPlan::drop_with_probability(p, seed)),
                ..CongestConfig::default()
            };
            let mut net = Network::with_config(build(&recipe), nodes, 1, config).unwrap();
            net.run(10).unwrap().total_dropped()
        };
        prop_assert_eq!(run_dropped(0.0), 0);
        let all = run_dropped(1.0);
        let half = run_dropped(0.5);
        prop_assert!(half <= all);
        let sent = 4 * 2 * topo.num_edges() as u64;
        prop_assert_eq!(all, sent, "p=1 drops everything that was sent");
    }

    #[test]
    fn inboxes_are_sorted_by_sender(recipe in graph_strategy(false)) {
        struct Check { ok: bool, done: bool }
        impl NodeLogic for Check {
            type Msg = u32;
            fn step(&mut self, ctx: &mut StepCtx<'_, u32>) {
                if ctx.round() == 0 {
                    ctx.broadcast(0);
                } else {
                    self.ok = ctx.inbox().windows(2).all(|w| w[0].0 <= w[1].0);
                    self.done = true;
                }
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let topo = build(&recipe);
        let nodes: Vec<Check> = (0..recipe.n).map(|_| Check { ok: false, done: false }).collect();
        let mut net = Network::new(topo, nodes, 0).unwrap();
        net.run(5).unwrap();
        prop_assert!(net.nodes().iter().all(|c| c.ok));
    }

    #[test]
    fn tree_aggregation_is_exact_on_random_connected_graphs(
        recipe in graph_strategy(true),
        root in 0usize..12,
        values in prop::collection::vec(0.0f64..100.0, 12),
    ) {
        let topo = build(&recipe);
        let root = NodeId::new((root % recipe.n) as u32);
        let vals = &values[..recipe.n];
        let (sum, t) = aggregate(&topo, root, vals, AggregateOp::Sum).unwrap();
        prop_assert!((sum - vals.iter().sum::<f64>()).abs() < 1e-9);
        prop_assert!(t.congest_compliant(72));
        let (mn, _) = aggregate(&topo, root, vals, AggregateOp::Min).unwrap();
        prop_assert_eq!(mn, vals.iter().copied().fold(f64::INFINITY, f64::min));
    }

    #[test]
    fn connectivity_check_agrees_with_aggregation(recipe in graph_strategy(false)) {
        let topo = build(&recipe);
        let vals = vec![1.0; recipe.n];
        let outcome = aggregate(&topo, NodeId::new(0), &vals, AggregateOp::Sum);
        if topo.is_connected() {
            let (sum, _) = outcome.unwrap();
            prop_assert_eq!(sum, recipe.n as f64);
        } else {
            let is_round_limit = matches!(outcome, Err(CongestError::RoundLimit { .. }));
            prop_assert!(is_round_limit, "disconnected graph should hit the round limit");
        }
    }
}
