//! Property tests pinning the pipelined-framing invariant: how the
//! kernel happens to split a byte stream into `read()` chunks must never
//! change which request lines the server sees — nor, therefore, a single
//! response byte.
//!
//! Splits are adversarial on purpose: one byte at a time, mid-JSON-escape
//! (between the `\` and the `n` of `\n` inside a string), and mid-UTF-8
//! (between the bytes of a multi-byte scalar). Framing is byte-defined
//! (everything up to `\n`), so none of these may desynchronize it.

use proptest::prelude::*;

use distfl_serve::frame::{Framed, LineFramer};
use distfl_serve::proto::{self, Parsed};
use distfl_serve::scheduler;
use distfl_serve::session::SessionCache;

/// Feeds `buffer` to a fresh framer in chunks of the given sizes (cycled
/// until the buffer is consumed) and returns the framed lines in order.
fn frame_with_chunks(buffer: &[u8], sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut framer = LineFramer::new(1 << 20);
    let mut lines = Vec::new();
    let mut rest = buffer;
    let mut cursor = 0usize;
    while !rest.is_empty() {
        let take = sizes[cursor % sizes.len()].clamp(1, rest.len());
        cursor += 1;
        let (chunk, after) = rest.split_at(take);
        framer.feed(chunk, &mut |framed| match framed {
            Framed::Line(line) => lines.push(line.to_vec()),
            Framed::Oversized { .. } => panic!("no oversized lines in this test"),
        });
        rest = after;
    }
    lines
}

/// Runs the framed lines through the real parse/execute pipeline and
/// renders the full response transcript (requests execute, commands ack,
/// errors render — exactly the server's per-line behavior).
fn respond(lines: &[Vec<u8>]) -> Vec<String> {
    let sessions = SessionCache::new(8);
    lines
        .iter()
        .filter_map(|raw| {
            let text = std::str::from_utf8(raw).expect("test lines are UTF-8");
            let trimmed = text.trim();
            if trimmed.is_empty() {
                return None;
            }
            Some(match proto::parse_line(trimmed) {
                Ok(Parsed::Request(request)) => scheduler::execute(&request, &sessions),
                Ok(Parsed::Command(cmd)) => proto::render_command_ack(cmd),
                Err(error) => proto::render_error(&error, proto::span_id(trimmed.as_bytes())),
            })
        })
        .collect()
}

/// One request line with a hostile id: multi-byte UTF-8 (é is 2 bytes,
/// 界 is 3, 𝄞 is 4) and JSON escapes (`\n`, `\"`) that a chunk boundary
/// can land inside.
fn request_line(pick: usize, seed: u64, opening: u32) -> String {
    let id = match pick % 5 {
        0 => format!("plain{seed}"),
        1 => "café-界-𝄞".to_owned(),
        2 => r"piped\nid".to_owned(),
        3 => r#"quo\"ted"#.to_owned(),
        _ => r"escéé".to_owned(),
    };
    format!(
        r#"{{"id":"{id}","solver":"greedy","seed":{seed},"instance":{{"opening":[{opening}.0],"links":[[0,1.0]]}}}}"#
    )
}

/// A full wire buffer: several lines — requests with hostile ids, blanks,
/// malformed junk, commands (the error and ack paths must be
/// split-invariant too) — newline-joined.
fn buffer_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0usize..7, 0u64..1000, 1u32..50), 1..10).prop_map(|items| {
        let mut buffer = Vec::new();
        for (pick, seed, opening) in items {
            let line = match pick {
                0..=3 => request_line(pick + seed as usize, seed, opening),
                4 => String::new(),
                5 => "this is not json".to_owned(),
                _ => r#"{"cmd":"ping"}"#.to_owned(),
            };
            buffer.extend_from_slice(line.as_bytes());
            buffer.push(b'\n');
        }
        buffer
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn framing_is_invariant_under_arbitrary_chunk_splits(
        buffer in buffer_strategy(),
        sizes in prop::collection::vec(1usize..17, 1..32),
    ) {
        let whole = frame_with_chunks(&buffer, &[buffer.len()]);
        let split = frame_with_chunks(&buffer, &sizes);
        prop_assert_eq!(&whole, &split, "chunking changed the framed line sequence");
    }

    #[test]
    fn responses_are_byte_identical_under_chunk_splits(
        buffer in buffer_strategy(),
        sizes in prop::collection::vec(1usize..9, 1..16),
    ) {
        let whole = respond(&frame_with_chunks(&buffer, &[buffer.len()]));
        let split = respond(&frame_with_chunks(&buffer, &sizes));
        prop_assert_eq!(&whole, &split, "chunking changed response bytes");
    }
}

#[test]
fn one_byte_chunks_split_every_escape_and_utf8_scalar() {
    let buffer = "{\"id\":\"caf\u{e9}-\u{754c}-\u{1d11e}-esc\\n\\\"\",\"solver\":\"greedy\",\
         \"instance\":{\"opening\":[1.0],\"links\":[[0,1.0]]}}\n"
        .as_bytes()
        .to_vec();
    let whole = frame_with_chunks(&buffer, &[buffer.len()]);
    let bytewise = frame_with_chunks(&buffer, &[1]);
    assert_eq!(whole, bytewise);
    assert_eq!(respond(&whole), respond(&bytewise));
    assert_eq!(respond(&whole).len(), 1);
    assert!(respond(&whole)[0].contains(r#""ok":true"#), "{}", respond(&whole)[0]);
}

#[test]
fn invalid_utf8_is_framed_bytewise_and_rejected_per_line() {
    // A line that is not UTF-8 at all must still frame identically under
    // any split (framing is byte-level; validation happens per line).
    let mut buffer = Vec::new();
    buffer.extend_from_slice(&[0xff, 0xfe, 0x80]);
    buffer.push(b'\n');
    buffer.extend_from_slice(br#"{"cmd":"ping"}"#);
    buffer.push(b'\n');
    let whole = frame_with_chunks(&buffer, &[buffer.len()]);
    let bytewise = frame_with_chunks(&buffer, &[1]);
    assert_eq!(whole, bytewise);
    assert_eq!(whole.len(), 2);
    assert!(std::str::from_utf8(&whole[0]).is_err());
    assert_eq!(whole[1], br#"{"cmd":"ping"}"#);
}
