//! End-to-end tests of the serve layer over real TCP connections.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use distfl_serve::{ServeConfig, Server};

/// A blocking NDJSON client: one connection, sync request/response.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed while awaiting a response");
        line.trim_end().to_owned()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

const GREEDY_INLINE: &str = r#"{"id":"g1","solver":"greedy","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#;

/// A paydual request over a uniform-random instance serialized to
/// OR-Library text; `seed` feeds the solver, `size` scales the work.
fn paydual_orlib_request(id: &str, seed: u64, facilities: usize, clients: usize) -> String {
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};
    let inst = UniformRandom::new(facilities, clients).unwrap().generate(seed).unwrap();
    let text = distfl_instance::orlib::to_string(&inst).unwrap();
    let mut w = distfl_obs::JsonWriter::object();
    w.key("id").string(id);
    w.key("solver").string("paydual");
    w.key("seed").number_u64(seed);
    w.key("orlib").string(&text);
    w.finish()
}

#[test]
fn solve_roundtrip_matches_direct_dispatch() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server);
    let response = client.roundtrip(GREEDY_INLINE);
    distfl_obs::validate_json(&response).unwrap();
    assert!(response.contains(r#""id":"g1","ok":true,"solver":"greedy""#), "{response}");
    assert!(response.contains(r#""cost":5.5"#), "{response}");
    assert!(response.contains(r#""open":[1]"#), "{response}");
    assert!(response.contains(r#""rounds":null"#), "{response}");

    // The distributed solver reports rounds and matches an in-process run.
    let request = paydual_orlib_request("p1", 7, 4, 12);
    let response = client.roundtrip(&request);
    assert!(response.contains(r#""ok":true"#), "{response}");
    assert!(!response.contains(r#""rounds":null"#), "distributed solver reports rounds");
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_typed_errors() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server);

    let response = client.roundtrip("this is not json");
    assert!(response.contains(r#""ok":false"#), "{response}");
    assert!(response.contains(r#""kind":"malformed_request""#), "{response}");

    let response = client.roundtrip(r#"{"id":"m2","solver":"simplex","orlib":"x"}"#);
    assert!(response.contains(r#""id":"m2""#), "{response}");
    assert!(response.contains(r#""kind":"malformed_request""#), "{response}");
    assert!(response.contains("simplex"), "{response}");

    // OR-Library parse errors surface their line number to the client.
    let response = client.roundtrip(r#"{"id":"m3","solver":"greedy","orlib":"1 1\n0 x\n0\n1\n"}"#);
    assert!(response.contains(r#""kind":"invalid_instance""#), "{response}");
    assert!(response.contains("line 2"), "{response}");

    // The connection stays usable after every error.
    let response = client.roundtrip(GREEDY_INLINE);
    assert!(response.contains(r#""ok":true"#), "{response}");
    server.shutdown();
}

#[test]
fn queue_full_is_an_immediate_typed_error() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    // A batch hook that holds the scheduler after it pops a batch, so the
    // test can fill the (capacity-1) queue at a known position.
    let popped = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let hook: distfl_serve::BatchHook = {
        let popped = Arc::clone(&popped);
        let gate = Arc::clone(&gate);
        Arc::new(move |_size| {
            popped.fetch_add(1, Ordering::SeqCst);
            let (lock, cv) = &*gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
    };
    let config = ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        workers: Some(0),
        shards: 1, // one queue, so its capacity is the test's only capacity
        batch_hook: Some(hook),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server);

    // Occupy the scheduler: it pops "slow" (queue empty again) and then
    // blocks in the hook.
    client.send(r#"{"id":"slow","solver":"greedy","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#);
    let deadline = Instant::now() + Duration::from_secs(30);
    while popped.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "scheduler never picked up the slow request");
        std::thread::sleep(Duration::from_millis(2));
    }

    // One request fits the queue; the next one must be refused at once —
    // the reader handles lines in order, so "over" is only examined after
    // "g1" has been admitted.
    client.send(GREEDY_INLINE);
    let started = Instant::now();
    let response = client.roundtrip(
        r#"{"id":"over","solver":"greedy","instance":{"opening":[1.0],"links":[[0,1.0]]}}"#,
    );
    assert!(response.contains(r#""id":"over""#), "{response}");
    assert!(response.contains(r#""kind":"queue_full""#), "{response}");
    assert!(response.contains("capacity 1"), "{response}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "queue_full reply must not wait for the solver"
    );

    // Release the scheduler; the held and queued requests complete in
    // admission order.
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    assert!(client.recv().contains(r#""id":"slow""#));
    assert!(client.recv().contains(r#""id":"g1""#));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let config = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        workers: Some(2),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server);
    for i in 0..10 {
        client.send(&paydual_orlib_request(&format!("d{i}"), i as u64, 5, 15));
    }
    // The reader admits lines in order, so the pong proves all ten
    // requests were admitted (capacity 64 — none refused) before the
    // drain begins.
    client.send(r#"{"cmd":"ping"}"#);
    let mut seen = Vec::new();
    loop {
        let response = client.recv();
        if response.contains(r#""pong":true"#) {
            break;
        }
        seen.push(response);
    }
    let addr = server.local_addr();
    server.shutdown();
    // Every admitted request was answered before shutdown returned.
    while seen.len() < 10 {
        seen.push(client.recv());
    }
    for response in &seen {
        assert!(response.contains(r#""ok":true"#), "{response}");
    }
    // The listener is gone.
    assert!(TcpStream::connect(addr).is_err(), "server still accepting after shutdown");
}

#[test]
fn shutdown_command_drains_like_a_signal() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server);
    assert!(client.roundtrip(r#"{"cmd":"ping"}"#).contains(r#""pong":true"#));
    client.send(GREEDY_INLINE);
    let ack_or_result = client.roundtrip(r#"{"cmd":"shutdown"}"#);
    // The solve response and the shutdown ack may arrive in either
    // order; collect both.
    let second = client.recv();
    let both = format!("{ack_or_result}\n{second}");
    assert!(both.contains(r#""shutdown":true"#), "{both}");
    assert!(both.contains(r#""id":"g1","ok":true"#), "{both}");
    server.wait();
}

#[test]
fn requests_after_drain_get_shutting_down_errors() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server);
    // Trigger the drain from a second connection, then race a request in
    // on the first; it must get a typed shutting_down (or, if the server
    // already closed the connection, a failed send / EOF — but never a
    // hang and never a solved response).
    let mut other = Client::connect(&server);
    assert!(other.roundtrip(r#"{"cmd":"shutdown"}"#).contains(r#""shutdown":true"#));
    let _ = writeln!(client.writer, "{GREEDY_INLINE}");
    let mut line = String::new();
    let n = client.reader.read_line(&mut line).unwrap_or(0);
    if n > 0 {
        assert!(line.contains(r#""kind":"shutting_down""#), "{line}");
    }
    server.wait();
}

#[test]
fn responses_are_byte_identical_across_restarts_and_worker_counts() {
    let mix: Vec<String> = (0..6)
        .flat_map(|i| {
            vec![
                paydual_orlib_request(&format!("mix{i}"), i as u64, 4, 10 + i),
                format!(
                    r#"{{"id":"inl{i}","solver":"local-search","seed":{i},"instance":{{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}}}"#
                ),
            ]
        })
        .collect();
    let mut runs: Vec<Vec<String>> = Vec::new();
    for workers in [0, 1, 3] {
        let config = ServeConfig {
            queue_capacity: 64,
            max_batch: 5,
            workers: Some(workers),
            ..ServeConfig::default()
        };
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(&server);
        let responses: Vec<String> = mix.iter().map(|r| client.roundtrip(r)).collect();
        server.shutdown();
        runs.push(responses);
    }
    assert_eq!(runs[0], runs[1], "workers 0 vs 1 diverge");
    assert_eq!(runs[0], runs[2], "workers 0 vs 3 diverge");
}

#[test]
fn responses_are_byte_identical_across_shard_counts_and_reactors() {
    use distfl_serve::reactor::ReactorKind;

    // Four concurrent connections (so multiple shards actually engage),
    // each with its own request mix, replayed against different shard
    // counts and reactor backends. Per-connection transcripts must match
    // byte for byte.
    let mixes: Vec<Vec<String>> = (0..4)
        .map(|c| {
            (0..5)
                .map(|i| match (c + i) % 3 {
                    0 => paydual_orlib_request(&format!("c{c}r{i}"), (c * 31 + i) as u64, 4, 9),
                    1 => format!(
                        r#"{{"id":"c{c}r{i}","solver":"greedy","instance":{{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}}}"#
                    ),
                    _ => format!(
                        r#"{{"id":"c{c}r{i}","solver":"local-search","seed":{i},"instance":{{"opening":[2.0,2.0],"links":[[0,1.5,1,0.5],[1,1.0]]}}}}"#
                    ),
                })
                .collect()
        })
        .collect();

    let mut runs: Vec<Vec<Vec<String>>> = Vec::new();
    for (shards, reactor) in
        [(1, ReactorKind::Auto), (4, ReactorKind::Auto), (4, ReactorKind::Sweep)]
    {
        let config = ServeConfig {
            queue_capacity: 64,
            max_batch: 4,
            workers: Some(2),
            shards,
            reactor,
            ..ServeConfig::default()
        };
        let server = Server::start("127.0.0.1:0", config).unwrap();
        assert_eq!(server.shards(), shards);
        let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(&server)).collect();
        let transcripts: Vec<Vec<String>> = clients
            .iter_mut()
            .zip(&mixes)
            .map(|(client, mix)| mix.iter().map(|r| client.roundtrip(r)).collect())
            .collect();
        server.shutdown();
        runs.push(transcripts);
    }
    assert_eq!(runs[0], runs[1], "1 shard vs 4 shards diverge");
    assert_eq!(runs[0], runs[2], "epoll/poll vs sweep reactor diverge");
}

#[test]
fn pipelined_requests_in_one_write_are_answered_in_order() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();

    // Reference: sequential roundtrips.
    let requests: Vec<String> = (0..20)
        .map(|i| {
            format!(
                r#"{{"id":"p{i}","solver":"greedy","seed":{i},"instance":{{"opening":[{}.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}}}"#,
                3 + (i % 4)
            )
        })
        .collect();
    let mut reference = Client::connect(&server);
    let expected: Vec<String> = requests.iter().map(|r| reference.roundtrip(r)).collect();

    // Pipelined: all 20 requests in a single write() syscall, so the
    // reactor frames the whole burst out of one read and admits it as one
    // group.
    let mut pipelined = Client::connect(&server);
    let mut burst = String::new();
    for request in &requests {
        burst.push_str(request);
        burst.push('\n');
    }
    pipelined.writer.write_all(burst.as_bytes()).expect("burst write");
    let got: Vec<String> = (0..requests.len()).map(|_| pipelined.recv()).collect();
    assert_eq!(got, expected, "pipelining changed response bytes or order");
    server.shutdown();
}

#[test]
fn slow_reader_is_shed_with_a_typed_error_and_others_keep_working() {
    let config = ServeConfig {
        queue_capacity: 1024,
        write_buffer_cap: 1024,    // the minimum: overflow fast
        sock_send_buffer: Some(1), // clamp the kernel's help to its floor
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();

    // The hog sends a flood of requests whose responses (padded ids make
    // each ~1 KiB) vastly exceed everything the kernel and the 1 KiB
    // write buffer can hold — and never reads.
    let mut hog = Client::connect(&server);
    let padding = "x".repeat(1024);
    for i in 0..600 {
        hog.send(&format!(
            r#"{{"id":"hog{i}-{padding}","solver":"greedy","instance":{{"opening":[1.0],"links":[[0,1.0]]}}}}"#
        ));
    }

    // A well-behaved connection keeps getting answers while the hog sits
    // unshed or shed — it must never be stalled by the hog.
    let mut polite = Client::connect(&server);
    for _ in 0..5 {
        let response = polite.roundtrip(GREEDY_INLINE);
        assert!(response.contains(r#""ok":true"#), "{response}");
    }

    // Now drain the hog's socket: some complete responses, then the typed
    // slow_reader error, then EOF. Every line must be intact JSON —
    // shedding never tears a response mid-line.
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        let n = hog.reader.read_line(&mut line).expect("read hog responses");
        if n == 0 {
            break;
        }
        lines.push(line.trim_end().to_owned());
    }
    let last = lines.last().expect("the shed error line must be delivered");
    assert!(last.contains(r#""kind":"slow_reader""#), "{last}");
    assert!(lines.len() < 600, "shedding must drop undelivered responses, got {}", lines.len());
    for line in &lines {
        distfl_obs::validate_json(line).expect("every delivered line is intact JSON");
    }

    // The polite connection survived the shed.
    assert!(polite.roundtrip(GREEDY_INLINE).contains(r#""ok":true"#));
    server.shutdown();
}

#[test]
fn session_mutate_solve_is_byte_identical_across_restarts() {
    // A pinned session streamed deltas: create → solve → mutate → solve →
    // mutate → solve → drop. The full transcript must be byte-identical
    // across server restarts, worker counts, and shard counts — the warm
    // path may never leak into response bytes.
    let script: Vec<String> = vec![
        r#"{"cmd":"create","id":"c1","session":"s1","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5],[0,3.0,1,1.0]]}}"#.into(),
        r#"{"cmd":"solve","id":"q1","session":"s1","solver":"greedy"}"#.into(),
        r#"{"cmd":"mutate","id":"m1","session":"s1","delta":{"reprice":[[0,0,0.25]],"add":[[0,0.5,1,4.0]]}}"#.into(),
        r#"{"cmd":"solve","id":"q2","session":"s1","solver":"jv"}"#.into(),
        r#"{"cmd":"mutate","id":"m2","session":"s1","delta":{"remove":[1,3]}}"#.into(),
        r#"{"cmd":"solve","id":"q3","session":"s1","solver":"local-search"}"#.into(),
        r#"{"cmd":"drop","id":"d1","session":"s1"}"#.into(),
    ];
    let mut runs: Vec<Vec<String>> = Vec::new();
    for (workers, shards) in [(0, 1), (2, 4), (3, 2)] {
        let config = ServeConfig { workers: Some(workers), shards, ..ServeConfig::default() };
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(&server);
        let transcript: Vec<String> = script.iter().map(|r| client.roundtrip(r)).collect();
        assert_eq!(server.session_count(), 0, "drop released the session");
        server.shutdown();
        runs.push(transcript);
    }
    assert_eq!(runs[0], runs[1], "restart/worker-count changed session response bytes");
    assert_eq!(runs[0], runs[2], "restart/shard-count changed session response bytes");
    for response in &runs[0] {
        distfl_obs::validate_json(response).unwrap();
        assert!(response.contains(r#""ok":true"#), "{response}");
    }
    assert!(runs[0][2].contains(r#""epoch":1"#), "{}", runs[0][2]);
    assert!(runs[0][4].contains(r#""epoch":2"#) && runs[0][4].contains(r#""removed":2"#));
}

#[test]
fn session_solve_matches_stateless_solve_of_the_mutated_instance() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server);
    client.roundtrip(
        r#"{"cmd":"create","id":"c1","session":"s","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#,
    );
    // Remove client 1, reprice (0,1), add a client on both facilities:
    // post-mutation instance = opening [4,3], links [[0,1.0,1,0.75],[0,2.5,1,6.0]].
    client.roundtrip(
        r#"{"cmd":"mutate","id":"m1","session":"s","delta":{"remove":[1],"reprice":[[0,1,0.75]],"add":[[0,2.5,1,6.0]]}}"#,
    );
    let strip_span = |s: String| s.split(r#","span""#).next().unwrap().to_owned();
    for solver in ["greedy", "local-search", "jv", "paydual"] {
        let warm = client.roundtrip(&format!(
            r#"{{"cmd":"solve","id":"q","session":"s","solver":"{solver}","seed":5}}"#
        ));
        let cold = client.roundtrip(&format!(
            r#"{{"id":"q","solver":"{solver}","seed":5,"instance":{{"opening":[4.0,3.0],"links":[[0,1.0,1,0.75],[0,2.5,1,6.0]]}}}}"#
        ));
        assert_eq!(strip_span(warm), strip_span(cold), "warm vs cold diverge for {solver}");
    }
    server.shutdown();
}

/// An `auto` request over a Euclidean (metric) instance serialized to
/// OR-Library text — the classifier must route it to the metric solver.
fn auto_euclidean_request(id: &str, seed: u64, facilities: usize, clients: usize) -> String {
    use distfl_instance::generators::{Euclidean, InstanceGenerator};
    let inst = Euclidean::new(facilities, clients).unwrap().generate(seed).unwrap();
    let text = distfl_instance::orlib::to_string(&inst).unwrap();
    let mut w = distfl_obs::JsonWriter::object();
    w.key("id").string(id);
    w.key("solver").string("auto");
    w.key("seed").number_u64(seed);
    w.key("orlib").string(&text);
    w.finish()
}

#[test]
fn auto_routing_reports_routes_and_is_byte_identical_across_restarts() {
    // Metric (Euclidean) payloads must route to metricball; a small
    // non-metric inline instance must route to local-search. The whole
    // transcript — including the routed field — must be byte-identical
    // across restarts, worker counts, and shard counts.
    let mut mix: Vec<String> =
        (0..4).map(|i| auto_euclidean_request(&format!("a{i}"), i, 4, 10 + i as usize)).collect();
    // c(0,c1)=10 > c(0,c0)+c(1,c0)+c(1,c1) = 1.2: a real metric violation.
    mix.push(
        r#"{"id":"nm","solver":"auto","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,0.1],[0,10.0,1,0.1]]}}"#
            .into(),
    );
    let mut runs: Vec<Vec<String>> = Vec::new();
    for (workers, shards) in [(0, 1), (2, 4), (3, 2)] {
        let config = ServeConfig { workers: Some(workers), shards, ..ServeConfig::default() };
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(&server);
        let transcript: Vec<String> = mix.iter().map(|r| client.roundtrip(r)).collect();
        server.shutdown();
        runs.push(transcript);
    }
    assert_eq!(runs[0], runs[1], "restart/worker-count changed auto response bytes");
    assert_eq!(runs[0], runs[2], "restart/shard-count changed auto response bytes");
    for response in &runs[0][..4] {
        distfl_obs::validate_json(response).unwrap();
        assert!(response.contains(r#""solver":"auto""#), "{response}");
        assert!(response.contains(r#""routed":"metricball""#), "{response}");
        // The routed solver is distributed: the response reports rounds.
        assert!(!response.contains(r#""rounds":null"#), "{response}");
    }
    let nm = &runs[0][4];
    assert!(nm.contains(r#""routed":"local-search""#), "{nm}");
    assert!(nm.contains(r#""rounds":null"#), "{nm}");
}

#[test]
fn session_verbs_on_missing_sessions_get_typed_errors() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server);
    for line in [
        r#"{"cmd":"solve","id":"q","session":"ghost","solver":"greedy"}"#,
        r#"{"cmd":"mutate","id":"m","session":"ghost","delta":{"remove":[0]}}"#,
        r#"{"cmd":"drop","id":"d","session":"ghost"}"#,
    ] {
        let response = client.roundtrip(line);
        assert!(response.contains(r#""kind":"unknown_session""#), "{response}");
        assert!(response.contains("ghost"), "{response}");
    }
    // An unknown verb reports the registry-derived menu.
    let response = client.roundtrip(r#"{"cmd":"reboot"}"#);
    assert!(response.contains("create, mutate, solve or drop"), "{response}");
    // The connection stays usable.
    assert!(client.roundtrip(GREEDY_INLINE).contains(r#""ok":true"#));
    server.shutdown();
}
