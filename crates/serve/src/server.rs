//! The TCP server: listener, thread-per-connection I/O, and graceful
//! drain.
//!
//! Data flow: a connection thread reads one NDJSON line, parses it, and
//! pushes the request into the bounded [`Admission`] queue (a full or
//! closed queue is an immediate typed error — admission never blocks a
//! client). The single scheduler thread pops batches and fans them out
//! on the worker pool; responses travel back through a per-connection
//! unbounded channel drained by a dedicated writer thread, so slow
//! clients never stall workers.
//!
//! Shutdown (the `{"cmd":"shutdown"}` SIGTERM-equivalent, or
//! [`Server::shutdown`]) drains rather than aborts: stop accepting
//! connections, close the queue for admission, let the scheduler answer
//! everything already admitted, then release the connection readers and
//! let the writers flush. No admitted request loses its response.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use distfl_pool::WorkerPool;

use crate::proto::{self, Command, ErrorKind, Parsed, ServeError};
use crate::queue::{Admission, AdmitError};
use crate::scheduler::{self, Job};

/// Instrumentation hook invoked with each batch's size after it is
/// popped and before it executes (see [`ServeConfig::batch_hook`]).
pub type BatchHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bound on requests admitted but not yet executing. Admission
    /// beyond it returns a `queue_full` error immediately.
    pub queue_capacity: usize,
    /// Most requests one scheduler fork/join executes together.
    pub max_batch: usize,
    /// Worker threads: `Some(n)` takes the process-wide shared pool of
    /// that size ([`WorkerPool::shared`]), `None` the global pool
    /// ([`WorkerPool::global`]) — either way the pool outlives the
    /// server and is reused by later servers and sweeps in-process.
    pub workers: Option<usize>,
    /// Called on the scheduler thread with each popped batch's size,
    /// before the batch executes. A logging/telemetry point; tests use a
    /// blocking hook to pin the scheduler at a known position.
    pub batch_hook: Option<BatchHook>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("max_batch", &self.max_batch)
            .field("workers", &self.workers)
            .field("batch_hook", &self.batch_hook.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { queue_capacity: 256, max_batch: 16, workers: None, batch_hook: None }
    }
}

/// State shared by the listener, connections, and the shutdown path.
struct Inner {
    queue: Admission<Job>,
    requests: distfl_obs::Counter,
    queue_depth: distfl_obs::Gauge,
    draining: AtomicBool,
    addr: SocketAddr,
    /// Read-half clones of live connections, for releasing blocked
    /// readers at drain time.
    conns: Mutex<Vec<TcpStream>>,
    /// Connection thread handles (each joins its own writer).
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Inner {
    /// Flips the server into draining mode (idempotent): close admission
    /// and unblock the accept loop.
    fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // The accept loop blocks in accept(); a throwaway connection to
        // ourselves wakes it so it can observe `draining` and exit.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running solver service bound to a local address.
///
/// Dropping a `Server` without calling [`Server::shutdown`] detaches the
/// background threads (they keep serving); shut down explicitly to drain.
pub struct Server {
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the listener and scheduler threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let pool = match config.workers {
            Some(workers) => WorkerPool::shared(workers),
            None => WorkerPool::global(),
        };
        let inner = Arc::new(Inner {
            queue: Admission::new(config.queue_capacity),
            requests: distfl_obs::counter("serve.requests"),
            queue_depth: distfl_obs::gauge("serve.queue_depth"),
            draining: AtomicBool::new(false),
            addr: local,
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
        });

        let scheduler_thread = {
            let inner = Arc::clone(&inner);
            let max_batch = config.max_batch.max(1);
            let hook = config.batch_hook.clone();
            std::thread::Builder::new()
                .name("distfl-serve-sched".to_owned())
                .spawn(move || scheduler::run(&inner.queue, &pool, max_batch, hook.as_deref()))
                .expect("spawn scheduler thread")
        };

        let accept_thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("distfl-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn accept thread")
        };

        Ok(Server {
            inner,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Requests admitted but not yet handed to the scheduler (for tests
    /// and monitoring; the same value feeds the `serve.queue_depth`
    /// gauge).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Whether a drain has been initiated (by [`Server::shutdown`] or a
    /// client `shutdown` command).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Initiates a graceful drain and blocks until it completes; every
    /// admitted request is answered before this returns.
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        self.join_all();
    }

    /// Blocks until a drain is initiated elsewhere (a client `shutdown`
    /// command) and completes — the run loop of the `distfl-serve`
    /// binary.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Joins accept → scheduler → connection threads, releasing blocked
    /// connection readers in between. Idempotent.
    fn join_all(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler_thread.take() {
            let _ = handle.join();
        }
        // All responses are now in the per-connection channels. Release
        // the readers (shut down the read half only — writers must still
        // flush) and join the connection threads.
        for conn in relock(&self.inner.conns).drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = relock(&self.inner.conn_threads).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until a drain begins.
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Responses are single small lines; Nagle-delaying them costs tens
        // of milliseconds of latency for nothing.
        let _ = stream.set_nodelay(true);
        if let Ok(read_half) = stream.try_clone() {
            relock(&inner.conns).push(read_half);
        }
        let inner_conn = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("distfl-serve-conn".to_owned())
            .spawn(move || handle_connection(stream, &inner_conn))
            .expect("spawn connection thread");
        relock(&inner.conn_threads).push(handle);
    }
}

/// Reads request lines until EOF (or drain release), replying through a
/// dedicated writer thread so responses can stream back out of order
/// while the reader keeps admitting.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("distfl-serve-write".to_owned())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(line) = rx.recv() {
                // Flush per response: clients speak sync request/response.
                if out.write_all(line.as_bytes()).is_err()
                    || out.write_all(b"\n").is_err()
                    || out.flush().is_err()
                {
                    return;
                }
            }
        })
        .expect("spawn writer thread");

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        inner.requests.incr();
        let send = |response: String| {
            let _ = tx.send(response);
        };
        match proto::parse_line(trimmed) {
            Ok(Parsed::Command(cmd)) => {
                send(proto::render_command_ack(cmd));
                if cmd == Command::Shutdown {
                    inner.begin_shutdown();
                }
            }
            Ok(Parsed::Request(request)) => {
                let span_id = request.span_id;
                let id = request.id.clone();
                match inner.queue.push(Job { request: *request, reply: tx.clone() }) {
                    Ok(()) => inner.queue_depth.set(inner.queue.depth() as f64),
                    Err((_, reason)) => {
                        let (kind, detail) = match reason {
                            AdmitError::Full => (
                                ErrorKind::QueueFull,
                                format!("admission queue at capacity {}", inner.queue.capacity()),
                            ),
                            AdmitError::Closed => (
                                ErrorKind::ShuttingDown,
                                "server is draining and admits no new work".to_owned(),
                            ),
                        };
                        let error = ServeError { kind, detail, id: Some(id) };
                        send(proto::render_error(&error, span_id));
                    }
                }
            }
            Err(error) => {
                let span_id = proto::span_id(trimmed.as_bytes());
                send(proto::render_error(&error, span_id));
            }
        }
    }
    // Reader done: drop our sender so the writer exits once every
    // in-flight job (each holding a sender clone) has replied.
    drop(tx);
    let _ = writer.join();
}
