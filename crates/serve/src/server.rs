//! The TCP server: a readiness-driven event loop plus per-shard batching
//! schedulers.
//!
//! Data flow: one **reactor thread** owns the listener and every
//! connection as nonblocking sockets behind a [`crate::reactor::Poller`]
//! (epoll on Linux). A readable socket is drained into a
//! [`crate::frame::LineFramer`]; every complete NDJSON line is parsed in
//! place and the whole burst is admitted to its connection's **shard
//! queue as one group** ([`Admission::push_group`]) — pipelined requests
//! never wait one scheduler tick each. Connections map to one of N shard
//! queues by a hash of their socket id, so admission contention is spread
//! across shards instead of a single global queue. Each shard's
//! scheduler thread pops batches and fans them out on the shared worker
//! pool; rendered responses come back through a completion list that
//! wakes the reactor, which appends them to the connection's **bounded**
//! write buffer and flushes opportunistically. A client that stops
//! draining its socket overflows that buffer and is shed with a typed
//! `slow_reader` error — it never stalls workers, shards, or other
//! connections.
//!
//! Responses stay byte-deterministic: request execution is a pure
//! function of the request line, so batch composition, worker count,
//! shard count, and reactor timing never leak into response bytes.
//!
//! Shutdown (the `{"cmd":"shutdown"}` SIGTERM-equivalent, or
//! [`Server::shutdown`]) drains rather than aborts: stop accepting,
//! close the shard queues for admission, let the schedulers answer
//! everything already admitted, flush every write buffer, then close.
//! No admitted request loses its response.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use distfl_pool::WorkerPool;

use crate::conn::{Append, WriteBuf};
use crate::frame::{Framed, LineFramer};
use crate::proto::{self, Command, ErrorKind, Parsed, ServeError};
use crate::queue::{Admission, AdmitError};
use crate::reactor::{self, Event, Interest, Poller, ReactorKind, Waker, WAKE_TOKEN};
use crate::scheduler::{self, Job};
use crate::session::SessionCache;

/// Instrumentation hook invoked with each batch's size after it is
/// popped and before it executes (see [`ServeConfig::batch_hook`]).
pub type BatchHook = Arc<dyn Fn(usize) + Send + Sync>;

/// The reactor's reserved token for the listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Hard cap on one request line (an oversized line is refused and
/// skipped, not buffered).
const MAX_LINE: usize = 16 * 1024 * 1024;

/// Most bytes drained from one connection per readiness event, so a
/// firehose connection cannot starve its neighbours.
const READ_BURST: usize = 256 * 1024;

/// How long a drain waits for write buffers to flush before force-closing
/// lingering connections.
const DRAIN_LINGER: Duration = Duration::from_secs(5);

/// How long a shed connection lingers (discarding inbound bytes) after
/// its error line has flushed, so closing never RSTs the error away.
const SHED_LINGER: Duration = Duration::from_secs(2);

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bound on requests admitted but not yet executing, **per shard**.
    /// Admission beyond it returns a `queue_full` error immediately.
    pub queue_capacity: usize,
    /// Most requests one shard fork/join executes together.
    pub max_batch: usize,
    /// Worker threads: `Some(n)` takes the process-wide shared pool of
    /// that size ([`WorkerPool::shared`]), `None` the global pool
    /// ([`WorkerPool::global`]) — either way the pool outlives the
    /// server and is reused by later servers and sweeps in-process.
    pub workers: Option<usize>,
    /// Shard queues (and scheduler threads). `0` picks the machine's
    /// available parallelism. Connections map to shards by socket-id
    /// hash; responses are byte-identical at any shard count.
    pub shards: usize,
    /// Cap on one connection's pending response bytes. A client that
    /// stops draining its socket overflows this and is shed with a typed
    /// `slow_reader` error instead of growing server memory. Clamped to
    /// at least 1024.
    pub write_buffer_cap: usize,
    /// Readiness backend (`Auto` = epoll on Linux, poll on other Unix,
    /// timed sweep elsewhere).
    pub reactor: ReactorKind,
    /// When set, clamps each connection's kernel send buffer
    /// (`SO_SNDBUF`): bounds per-connection kernel memory at high
    /// connection counts and surfaces backpressure to the user-space
    /// write buffer sooner. Unix only; ignored elsewhere.
    pub sock_send_buffer: Option<usize>,
    /// Called on a shard's scheduler thread with each popped batch's
    /// size, before the batch executes. A logging/telemetry point; tests
    /// use a blocking hook to pin a scheduler at a known position.
    pub batch_hook: Option<BatchHook>,
    /// Most sessions pinned at once (see [`crate::session`]). Creating a
    /// new session beyond it evicts the least-recently-touched one.
    /// Clamped to at least 1.
    pub session_capacity: usize,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("max_batch", &self.max_batch)
            .field("workers", &self.workers)
            .field("shards", &self.shards)
            .field("write_buffer_cap", &self.write_buffer_cap)
            .field("reactor", &self.reactor)
            .field("sock_send_buffer", &self.sock_send_buffer)
            .field("batch_hook", &self.batch_hook.as_ref().map(|_| "Fn"))
            .field("session_capacity", &self.session_capacity)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_batch: 16,
            workers: None,
            shards: 0,
            write_buffer_cap: 256 * 1024,
            reactor: ReactorKind::Auto,
            sock_send_buffer: None,
            batch_hook: None,
            session_capacity: 64,
        }
    }
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the reactor, the shard schedulers, and the shutdown
/// path.
struct Shared {
    /// One bounded admission queue per shard.
    queues: Vec<Arc<Admission<Job>>>,
    /// Rendered responses on their way back to the reactor.
    completions: Mutex<Vec<(u64, String)>>,
    /// Wakes the reactor (completions ready, or drain initiated).
    waker: Waker,
    draining: AtomicBool,
    /// Shard scheduler threads still running (drain completes at 0).
    active_shards: AtomicUsize,
    /// Session-pinned instances, shared by every shard.
    sessions: Arc<SessionCache>,
    addr: SocketAddr,
}

impl Shared {
    /// Flips the server into draining mode (idempotent): close admission
    /// on every shard and wake the reactor so it stops accepting.
    fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for queue in &self.queues {
            queue.close();
        }
        self.waker.wake();
    }
}

/// A running solver service bound to a local address.
///
/// Dropping a `Server` without calling [`Server::shutdown`] detaches the
/// background threads (they keep serving); shut down explicitly to drain.
pub struct Server {
    shared: Arc<Shared>,
    reactor_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the reactor and shard scheduler threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and reactor-backend construction
    /// failures (e.g. forcing `epoll` off Linux).
    pub fn start(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let mut poller = Poller::new(config.reactor)?;
        poller.register(reactor::source_id(&listener), LISTEN_TOKEN, Interest::READ)?;
        let waker = poller.waker();

        let pool = match config.workers {
            Some(workers) => WorkerPool::shared(workers),
            None => WorkerPool::global(),
        };
        let shards = match config.shards {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let shared = Arc::new(Shared {
            queues: (0..shards).map(|_| Arc::new(Admission::new(config.queue_capacity))).collect(),
            completions: Mutex::new(Vec::new()),
            waker,
            draining: AtomicBool::new(false),
            active_shards: AtomicUsize::new(shards),
            sessions: Arc::new(SessionCache::new(config.session_capacity)),
            addr: local,
        });

        let shard_threads = (0..shards)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&shared.queues[index]);
                let pool = Arc::clone(&pool);
                let max_batch = config.max_batch.max(1);
                let hook = config.batch_hook.clone();
                std::thread::Builder::new()
                    .name(format!("distfl-serve-shard{index}"))
                    .spawn(move || {
                        let sink = {
                            let shared = Arc::clone(&shared);
                            move |batch: Vec<(u64, String)>| {
                                relock(&shared.completions).extend(batch);
                                shared.waker.wake();
                            }
                        };
                        let sessions = Arc::clone(&shared.sessions);
                        scheduler::run_shard(
                            &queue,
                            &pool,
                            &sessions,
                            max_batch,
                            hook.as_deref(),
                            &sink,
                        );
                        shared.active_shards.fetch_sub(1, Ordering::SeqCst);
                        shared.waker.wake();
                    })
                    .expect("spawn shard scheduler thread")
            })
            .collect();

        let reactor_thread = {
            let shared = Arc::clone(&shared);
            let write_cap = config.write_buffer_cap.max(1024);
            let sock_send_buffer = config.sock_send_buffer;
            std::thread::Builder::new()
                .name("distfl-serve-reactor".to_owned())
                .spawn(move || {
                    Reactor::new(poller, listener, shared, write_cap, sock_send_buffer).run()
                })
                .expect("spawn reactor thread")
        };

        Ok(Server { shared, reactor_thread: Some(reactor_thread), shard_threads })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests admitted but not yet handed to a scheduler, summed over
    /// shards (for tests and monitoring; the same per-shard value feeds
    /// the `serve.queue_depth` gauge).
    pub fn queue_depth(&self) -> usize {
        self.shared.queues.iter().map(|q| q.depth()).sum()
    }

    /// The number of shard queues in use.
    pub fn shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// How many sessions are currently pinned (for tests and monitoring).
    pub fn session_count(&self) -> usize {
        self.shared.sessions.len()
    }

    /// Whether a drain has been initiated (by [`Server::shutdown`] or a
    /// client `shutdown` command).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Initiates a graceful drain and blocks until it completes; every
    /// admitted request is answered before this returns.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    /// Blocks until a drain is initiated elsewhere (a client `shutdown`
    /// command) and completes — the run loop of the `distfl-serve`
    /// binary.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Joins shard schedulers, then the reactor (which exits only after
    /// the schedulers finish and every response has been flushed or its
    /// connection shed), then releases the session cache — after the
    /// joins, so no in-flight session job ever observes a vanishing
    /// session. Idempotent.
    fn join_all(&mut self) {
        for handle in self.shard_threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
        self.shared.sessions.clear();
    }
}

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    source: reactor::SourceId,
    token: u64,
    framer: LineFramer,
    write: WriteBuf,
    interest: Interest,
    /// Requests admitted to a shard queue whose responses are still due.
    inflight: usize,
    /// Backpressure overflow tripped: requests ignored, responses
    /// discarded, closing once the shed error line has flushed.
    shed: bool,
    /// Peer closed its write half (or a read error occurred).
    read_closed: bool,
    /// Set once the shed error has flushed: the write half is shut down
    /// and inbound bytes are discarded until EOF or this deadline, so the
    /// close never turns into a RST that purges the error line
    /// client-side.
    linger_until: Option<Instant>,
}

/// A parse outcome carried out of the framing closure (which cannot touch
/// the connection it is framing for — borrow-wise — so outcomes are
/// staged and applied right after).
enum LineOut {
    Parsed(Parsed),
    Error(ServeError, u64),
}

/// Obs handles the reactor updates.
struct Metrics {
    requests: distfl_obs::Counter,
    bytes_read: distfl_obs::Counter,
    bytes_written: distfl_obs::Counter,
    pipelined: distfl_obs::Counter,
    wakeups: distfl_obs::Counter,
    shed: distfl_obs::Counter,
    open_conns: distfl_obs::Gauge,
    queue_depth: distfl_obs::Gauge,
}

/// The reactor: the event loop thread's whole state.
struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Per-slot generation stamp, detecting stale completion tokens.
    generations: Vec<u32>,
    live: usize,
    /// Shed connections in their lingering-close window.
    lingering: usize,
    write_cap: usize,
    sock_send_buffer: Option<usize>,
    scratch: Vec<u8>,
    drain_deadline: Option<Instant>,
    metrics: Metrics,
}

impl Reactor {
    fn new(
        poller: Poller,
        listener: TcpListener,
        shared: Arc<Shared>,
        write_cap: usize,
        sock_send_buffer: Option<usize>,
    ) -> Reactor {
        Reactor {
            poller,
            listener: Some(listener),
            shared,
            slots: Vec::new(),
            free: Vec::new(),
            generations: Vec::new(),
            live: 0,
            lingering: 0,
            write_cap,
            sock_send_buffer,
            scratch: vec![0u8; 64 * 1024],
            drain_deadline: None,
            metrics: Metrics {
                requests: distfl_obs::counter("serve.requests"),
                bytes_read: distfl_obs::counter("serve.bytes_read"),
                bytes_written: distfl_obs::counter("serve.bytes_written"),
                pipelined: distfl_obs::counter("serve.pipelined_requests"),
                wakeups: distfl_obs::counter("serve.reactor_wakeups"),
                shed: distfl_obs::counter("serve.connections_shed"),
                open_conns: distfl_obs::gauge("serve.open_connections"),
                queue_depth: distfl_obs::gauge("serve.queue_depth"),
            },
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let draining = self.shared.draining.load(Ordering::SeqCst);
            if draining {
                self.enter_drain();
                if self.drain_complete() {
                    self.close_all();
                    return;
                }
            }
            let timeout = if draining {
                Some(Duration::from_millis(50))
            } else if self.lingering > 0 {
                Some(Duration::from_millis(100))
            } else {
                None
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot serve; treat as a hard drain.
                self.close_all();
                return;
            }
            self.metrics.wakeups.incr();
            let mut accept_ready = false;
            for &event in &events {
                match event.token {
                    WAKE_TOKEN => {}
                    LISTEN_TOKEN => accept_ready = true,
                    token => self.on_conn_event(token, event.readable, event.writable),
                }
            }
            // Completions may have arrived with or without a wake event;
            // applying them every iteration is one cheap lock.
            self.apply_completions();
            if accept_ready {
                self.accept_ready();
            }
            if self.lingering > 0 {
                self.expire_lingerers();
            }
        }
    }

    /// Force-closes shed connections whose lingering-close window ran out
    /// (the client neither read the error nor closed).
    fn expire_lingerers(&mut self) {
        let now = Instant::now();
        for index in 0..self.slots.len() {
            let expired = matches!(
                &self.slots[index],
                Some(conn) if conn.linger_until.is_some_and(|d| now >= d)
            );
            if expired {
                self.close_conn(index);
            }
        }
    }

    /// First-iteration-of-drain work: stop accepting, start the linger
    /// clock.
    fn enter_drain(&mut self) {
        if self.drain_deadline.is_some() {
            return;
        }
        self.drain_deadline = Some(Instant::now() + DRAIN_LINGER);
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(reactor::source_id(&listener), LISTEN_TOKEN);
        }
    }

    /// True once every response has been delivered into a write buffer
    /// and flushed (or the linger expired): schedulers done, completion
    /// list empty, all buffers empty.
    fn drain_complete(&mut self) -> bool {
        if self.shared.active_shards.load(Ordering::SeqCst) != 0 {
            return false;
        }
        if !relock(&self.shared.completions).is_empty() {
            return false;
        }
        let flushed = self.slots.iter().flatten().all(|c| c.write.is_empty());
        flushed || self.drain_deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn close_all(&mut self) {
        for index in 0..self.slots.len() {
            if self.slots[index].is_some() {
                self.close_conn(index);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => self.add_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Responses are small lines; Nagle-delaying them costs tens of
        // milliseconds of latency for nothing.
        let _ = stream.set_nodelay(true);
        let source = reactor::source_id(&stream);
        if let Some(bytes) = self.sock_send_buffer {
            let _ = reactor::set_send_buffer_size(source, bytes);
        }
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        let token = (index as u64) | (u64::from(self.generations[index]) << 32);
        if self.poller.register(source, token, Interest::READ).is_err() {
            self.free.push(index);
            return;
        }
        self.slots[index] = Some(Conn {
            stream,
            source,
            token,
            framer: LineFramer::new(MAX_LINE),
            write: WriteBuf::new(self.write_cap),
            interest: Interest::READ,
            inflight: 0,
            shed: false,
            read_closed: false,
            linger_until: None,
        });
        self.live += 1;
        self.metrics.open_conns.set(self.live as f64);
    }

    /// Slot index of a live connection token, if it still refers to one.
    fn resolve(&self, token: u64) -> Option<usize> {
        let index = (token & u32::MAX as u64) as usize;
        match self.slots.get(index) {
            Some(Some(conn)) if conn.token == token => Some(index),
            _ => None,
        }
    }

    fn close_conn(&mut self, index: usize) {
        if let Some(conn) = self.slots[index].take() {
            if conn.linger_until.is_some() {
                self.lingering -= 1;
            }
            self.poller.deregister(conn.source, conn.token);
            self.generations[index] = self.generations[index].wrapping_add(1);
            self.free.push(index);
            self.live -= 1;
            self.metrics.open_conns.set(self.live as f64);
        }
    }

    fn on_conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(index) = self.resolve(token) else { return };
        if readable {
            self.read_conn(index);
        }
        if self.slots[index].is_some() {
            let _ = writable; // maintain() always attempts a flush
            self.maintain(index);
        }
    }

    /// Drains readable bytes, frames them, parses every complete line,
    /// and admits the parsed requests to the connection's shard as one
    /// group.
    fn read_conn(&mut self, index: usize) {
        let conn = self.slots[index].as_mut().expect("resolved index is live");
        if conn.read_closed {
            return;
        }
        if conn.shed {
            // Lingering discard: consume inbound bytes without processing
            // so the eventual close finds an empty receive queue (no RST).
            let mut drained = 0;
            loop {
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        drained += n;
                        if drained >= READ_BURST {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.read_closed = true;
                        break;
                    }
                }
            }
            return;
        }
        let mut outs: Vec<LineOut> = Vec::new();
        let mut drained = 0;
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    drained += n;
                    self.metrics.bytes_read.add(n as u64);
                    let chunk = &self.scratch[..n];
                    conn.framer.feed(chunk, &mut |framed| match framed {
                        Framed::Line(line) => {
                            if let Some(out) = classify_line(line) {
                                outs.push(out);
                            }
                        }
                        Framed::Oversized { dropped } => {
                            outs.push(LineOut::Error(
                                ServeError {
                                    kind: ErrorKind::MalformedRequest,
                                    detail: format!(
                                        "request line exceeds {MAX_LINE} bytes ({dropped} \
                                         buffered); line skipped"
                                    ),
                                    id: None,
                                },
                                0,
                            ));
                        }
                    });
                    if drained >= READ_BURST {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
        self.apply_lines(index, outs);
    }

    /// Applies staged line outcomes: immediate replies for commands and
    /// errors, grouped shard admission for solve requests.
    fn apply_lines(&mut self, index: usize, outs: Vec<LineOut>) {
        let mut group: Vec<Job> = Vec::new();
        let token = self.slots[index].as_ref().expect("live conn").token;
        for out in outs {
            self.metrics.requests.incr();
            match out {
                LineOut::Parsed(Parsed::Request(request)) => {
                    group.push(Job { request: *request, conn: token });
                }
                LineOut::Parsed(Parsed::Command(cmd)) => {
                    // Requests sent ahead of a shutdown command on the same
                    // socket burst must be admitted before the drain closes
                    // the queues.
                    if cmd == Command::Shutdown {
                        self.admit_group(index, &mut group);
                    }
                    self.append_response(index, &proto::render_command_ack(cmd));
                    if cmd == Command::Shutdown {
                        self.shared.begin_shutdown();
                    }
                }
                LineOut::Error(error, span) => {
                    self.append_response(index, &proto::render_error(&error, span));
                }
            }
            if self.slots[index].is_none() {
                return; // connection shed and closed mid-burst
            }
        }
        self.admit_group(index, &mut group);
    }

    /// Admits a pipelined group to the connection's shard queue under one
    /// lock; refused requests get their typed error immediately.
    fn admit_group(&mut self, index: usize, group: &mut Vec<Job>) {
        if group.is_empty() {
            return;
        }
        let batch = std::mem::take(group);
        let size = batch.len();
        let conn = self.slots[index].as_mut().expect("live conn");
        let shard = shard_of(conn.source, self.shared.queues.len());
        let queue = Arc::clone(&self.shared.queues[shard]);
        let rejected = queue.push_group(batch);
        let admitted = size - rejected.len();
        if size > 1 {
            self.metrics.pipelined.add(size as u64);
        }
        self.metrics.queue_depth.set(queue.depth() as f64);
        if let Some(conn) = self.slots[index].as_mut() {
            conn.inflight += admitted;
        }
        for (job, reason) in rejected {
            let (kind, detail) = match reason {
                AdmitError::Full => (
                    ErrorKind::QueueFull,
                    format!("admission queue at capacity {}", queue.capacity()),
                ),
                AdmitError::Closed => (
                    ErrorKind::ShuttingDown,
                    "server is draining and admits no new work".to_owned(),
                ),
            };
            let error = ServeError { kind, detail, id: Some(job.request.id) };
            self.append_response(index, &proto::render_error(&error, job.request.span_id));
        }
    }

    /// Appends one response line to a connection's bounded write buffer,
    /// shedding the connection on overflow.
    fn append_response(&mut self, index: usize, line: &str) {
        let Some(conn) = self.slots[index].as_mut() else { return };
        if conn.shed {
            return;
        }
        if conn.write.append_line(line) == Append::Overflow {
            self.shed_conn(index);
        }
    }

    /// Backpressure trip: drop undelivered responses (on line boundaries
    /// only), queue the typed `slow_reader` error, stop reading. The
    /// connection closes once the error flushes.
    fn shed_conn(&mut self, index: usize) {
        let cap = self.write_cap;
        let Some(conn) = self.slots[index].as_mut() else { return };
        conn.shed = true;
        self.metrics.shed.incr();
        let error = ServeError {
            kind: ErrorKind::SlowReader,
            detail: format!(
                "client stopped reading: write buffer exceeded {cap} bytes; connection shed"
            ),
            id: None,
        };
        conn.write.shed_to(&proto::render_error(&error, 0));
    }

    /// Takes the completion list and routes every response to its
    /// connection (silently dropping those whose connection is gone or
    /// shed — undeliverable by definition).
    fn apply_completions(&mut self) {
        let completed = std::mem::take(&mut *relock(&self.shared.completions));
        if completed.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::new();
        for (token, line) in completed {
            let Some(index) = self.resolve(token) else { continue };
            let conn = self.slots[index].as_mut().expect("resolved");
            conn.inflight = conn.inflight.saturating_sub(1);
            self.append_response(index, &line);
            if !touched.contains(&index) {
                touched.push(index);
            }
        }
        for index in touched {
            if self.slots[index].is_some() {
                self.maintain(index);
            }
        }
    }

    /// Post-event housekeeping for one connection: flush what the socket
    /// accepts, update readiness interest, close when finished.
    fn maintain(&mut self, index: usize) {
        let conn = self.slots[index].as_mut().expect("live conn");
        if !conn.write.is_empty() {
            match conn.write.flush_into(&mut conn.stream) {
                Ok(n) => self.metrics.bytes_written.add(n as u64),
                Err(_) => {
                    self.close_conn(index);
                    return;
                }
            }
        }
        let conn = self.slots[index].as_mut().expect("live conn");
        let done_writing = conn.write.is_empty();
        if conn.shed && done_writing {
            // The error line reached the kernel. Close right away if the
            // peer is gone; otherwise shut down our write half and linger,
            // discarding inbound bytes, so the close cannot RST the error
            // out of the client's receive queue.
            if conn.read_closed {
                self.close_conn(index);
                return;
            }
            if conn.linger_until.is_none() {
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.linger_until = Some(Instant::now() + SHED_LINGER);
                self.lingering += 1;
            }
            let want = Interest::READ;
            if want != conn.interest {
                conn.interest = want;
                let _ = self.poller.set_interest(conn.source, conn.token, want);
            }
            return;
        }
        if conn.read_closed && conn.inflight == 0 && done_writing {
            self.close_conn(index);
            return;
        }
        let want = Interest { read: !conn.read_closed, write: !done_writing };
        if want != conn.interest {
            conn.interest = want;
            let _ = self.poller.set_interest(conn.source, conn.token, want);
        }
    }
}

/// Stable shard assignment for a socket id (split-mix finalizer over the
/// raw fd). Responses never depend on it; only contention spread does.
fn shard_of(source: reactor::SourceId, shards: usize) -> usize {
    let mut x = source as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards.max(1) as u64) as usize
}

/// Parses one framed line into a staged outcome (`None` = blank line).
fn classify_line(line: &[u8]) -> Option<LineOut> {
    let Ok(text) = std::str::from_utf8(line) else {
        return Some(LineOut::Error(
            ServeError {
                kind: ErrorKind::MalformedRequest,
                detail: "request line is not valid UTF-8".to_owned(),
                id: None,
            },
            proto::span_id(line),
        ));
    };
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return None;
    }
    Some(match proto::parse_line(trimmed) {
        Ok(parsed) => LineOut::Parsed(parsed),
        Err(error) => LineOut::Error(error, proto::span_id(trimmed.as_bytes())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for fd in 0..64 {
                let a = shard_of(fd, shards);
                let b = shard_of(fd, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // The hash actually spreads consecutive fds.
        let spread: std::collections::BTreeSet<usize> = (0..16).map(|fd| shard_of(fd, 4)).collect();
        assert!(spread.len() > 1, "consecutive fds all hash to one shard");
    }

    #[test]
    fn classify_line_stages_parse_outcomes() {
        assert!(classify_line(b"").is_none());
        assert!(classify_line(b"   ").is_none());
        match classify_line(br#"{"cmd":"ping"}"#) {
            Some(LineOut::Parsed(Parsed::Command(Command::Ping))) => {}
            _ => panic!("ping should classify as a command"),
        }
        match classify_line(&[0xff, 0xfe]) {
            Some(LineOut::Error(error, _)) => {
                assert_eq!(error.kind, ErrorKind::MalformedRequest);
                assert!(error.detail.contains("UTF-8"), "{}", error.detail);
            }
            _ => panic!("invalid UTF-8 should classify as an error"),
        }
    }
}
