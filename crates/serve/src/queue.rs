//! The bounded admission queue between the reactor and one shard's
//! batching scheduler.
//!
//! The reactor `push`es (non-blocking: a full queue is an immediate typed
//! error back to the client, never a hang) — or [`Admission::push_group`]s
//! a whole pipelined burst under one lock — and the shard's scheduler
//! thread `pop_batch`es (blocking). Closing the queue stops admission
//! while letting the scheduler drain what was already admitted — the
//! mechanism behind graceful shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue holds `capacity` items; the client should retry later.
    Full,
    /// The queue was closed for admission (server draining).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue with a close switch.
pub struct Admission<T> {
    state: Mutex<State<T>>,
    nonempty: Condvar,
    capacity: usize,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Queue state is a plain VecDeque + flag, coherent at every step.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> Admission<T> {
    /// An open queue admitting at most `capacity` (≥ 1) queued items.
    pub fn new(capacity: usize) -> Self {
        Admission {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for metrics and tests).
    pub fn depth(&self) -> usize {
        relock(&self.state).items.len()
    }

    /// Admits `item`, or refuses immediately — never blocks.
    ///
    /// # Errors
    ///
    /// Returns the item back together with the reason so the caller can
    /// answer the client without re-parsing.
    pub fn push(&self, item: T) -> Result<(), (T, AdmitError)> {
        let mut state = relock(&self.state);
        if state.closed {
            return Err((item, AdmitError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, AdmitError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Admits every item of `group` that fits under **one** lock
    /// acquisition (the pipelined fast path: a burst of requests already
    /// sitting on a socket becomes one queue transaction, not one per
    /// request), returning the refused items with their reasons, in
    /// order. The consumer is notified once when anything was admitted.
    pub fn push_group(&self, group: Vec<T>) -> Vec<(T, AdmitError)> {
        let mut rejected = Vec::new();
        let mut admitted = false;
        {
            let mut state = relock(&self.state);
            for item in group {
                if state.closed {
                    rejected.push((item, AdmitError::Closed));
                } else if state.items.len() >= self.capacity {
                    rejected.push((item, AdmitError::Full));
                } else {
                    state.items.push_back(item);
                    admitted = true;
                }
            }
        }
        if admitted {
            self.nonempty.notify_one();
        }
        rejected
    }

    /// Closes the queue for admission and wakes the consumer. Items
    /// already queued remain poppable (drain semantics).
    pub fn close(&self) {
        relock(&self.state).closed = true;
        self.nonempty.notify_all();
    }

    /// Blocks until at least one item is available (or the queue is
    /// closed and empty), then removes and returns up to `max` items in
    /// admission order. An empty result means: closed and fully drained.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut state = relock(&self.state);
        while state.items.is_empty() && !state.closed {
            state = self.nonempty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        let take = state.items.len().min(max.max(1));
        state.items.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_refuses_when_full_and_returns_the_item() {
        let q = Admission::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        let (item, err) = q.push(3).unwrap_err();
        assert_eq!((item, err), (3, AdmitError::Full));
        // Popping frees capacity again.
        assert_eq!(q.pop_batch(10), vec![1, 2]);
        q.push(3).unwrap();
    }

    #[test]
    fn close_refuses_new_items_but_drains_queued_ones() {
        let q = Admission::new(4);
        q.push("a").unwrap();
        q.close();
        let (_, err) = q.push("b").unwrap_err();
        assert_eq!(err, AdmitError::Closed);
        assert_eq!(q.pop_batch(10), vec!["a"]);
        assert!(q.pop_batch(10).is_empty(), "closed + drained pops empty");
    }

    #[test]
    fn push_group_admits_what_fits_and_returns_the_rest() {
        let q = Admission::new(3);
        q.push(0).unwrap();
        let rejected = q.push_group(vec![1, 2, 3, 4]);
        assert_eq!(rejected, vec![(3, AdmitError::Full), (4, AdmitError::Full)]);
        assert_eq!(q.pop_batch(10), vec![0, 1, 2]);
        q.close();
        let rejected = q.push_group(vec![9]);
        assert_eq!(rejected, vec![(9, AdmitError::Closed)]);
    }

    #[test]
    fn pop_batch_respects_max_and_order() {
        let q = Admission::new(10);
        for i in 0..7 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3), vec![3, 4, 5]);
        assert_eq!(q.pop_batch(3), vec![6]);
    }

    #[test]
    fn pop_batch_blocks_until_a_push_arrives() {
        let q = Arc::new(Admission::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(8))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![42]);
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q: Arc<Admission<u32>> = Arc::new(Admission::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(8))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
    }
}
