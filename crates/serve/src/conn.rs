//! Per-connection state for the reactor loop: the read-side framer, the
//! bounded write buffer, and the backpressure (shed) state machine.
//!
//! Every connection owns exactly one [`WriteBuf`]: responses are appended
//! as whole lines and flushed opportunistically whenever the socket is
//! writable. The buffer is **bounded** — a client that stops draining its
//! socket cannot grow server memory past [`WriteBuf`]'s cap. When an
//! append would exceed the cap the connection is *shed*: every queued
//! complete line that has not started flushing is dropped (truncation
//! happens only on line boundaries, so the client never sees a torn
//! response), a typed `slow_reader` error line takes their place, reading
//! from the connection stops, and the socket closes once the error has
//! flushed. Other connections and the shard schedulers never block on a
//! slow reader.

use std::collections::VecDeque;

/// What [`WriteBuf::append_line`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Append {
    /// The line was queued.
    Queued,
    /// Queuing the line would exceed the cap; nothing was queued.
    Overflow,
}

/// A bounded outbound byte buffer that only ever truncates on response
/// line boundaries.
///
/// Layout: `head` holds the remainder of a line whose first bytes already
/// reached the socket (it must never be dropped — truncating it would
/// tear a response mid-line); `lines` holds complete, untouched response
/// lines. Flushing consumes `head` first, then promotes the next queued
/// line into `head`.
#[derive(Debug)]
pub struct WriteBuf {
    /// Unsent tail of the line currently being written (possibly whole).
    head: Vec<u8>,
    /// Offset into `head` already written to the socket.
    head_pos: usize,
    /// Complete lines (each including its trailing `\n`) not yet started.
    lines: VecDeque<Vec<u8>>,
    /// Total pending bytes (head remainder + queued lines).
    pending: usize,
    /// Cap on `pending`; appends beyond it report [`Append::Overflow`].
    cap: usize,
}

impl WriteBuf {
    /// An empty buffer refusing to hold more than `cap` pending bytes.
    pub fn new(cap: usize) -> WriteBuf {
        WriteBuf { head: Vec::new(), head_pos: 0, lines: VecDeque::new(), pending: 0, cap }
    }

    /// Pending (unwritten) bytes.
    #[cfg(test)]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Queues `line` plus a newline, unless that would push the buffer
    /// past its cap.
    pub fn append_line(&mut self, line: &str) -> Append {
        let len = line.len() + 1;
        if self.pending + len > self.cap {
            return Append::Overflow;
        }
        let mut bytes = Vec::with_capacity(len);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.lines.push_back(bytes);
        self.pending += len;
        Append::Queued
    }

    /// Drops every queued line that has not started flushing and queues
    /// `error_line` in their place (bypassing the cap — it is the one
    /// line a shed connection still owes its client). The in-progress
    /// head line, if any, is preserved so framing never tears.
    pub fn shed_to(&mut self, error_line: &str) {
        self.pending = self.head.len() - self.head_pos;
        self.lines.clear();
        let mut bytes = Vec::with_capacity(error_line.len() + 1);
        bytes.extend_from_slice(error_line.as_bytes());
        bytes.push(b'\n');
        self.pending += bytes.len();
        self.lines.push_back(bytes);
    }

    /// Writes as much pending data as the sink accepts, returning the
    /// bytes written. Stops on `WouldBlock` (reported as `Ok`) — any
    /// other error propagates.
    ///
    /// # Errors
    ///
    /// Propagates sink errors other than `WouldBlock`.
    pub fn flush_into(&mut self, sink: &mut dyn std::io::Write) -> std::io::Result<usize> {
        let mut written = 0;
        loop {
            if self.head_pos == self.head.len() {
                self.head.clear();
                self.head_pos = 0;
                match self.lines.pop_front() {
                    Some(line) => self.head = line,
                    None => return Ok(written),
                }
            }
            match sink.write(&self.head[self.head_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.head_pos += n;
                    self.pending -= n;
                    written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(written),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => Err(e)?,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    /// A sink accepting at most `limit` bytes per write, then WouldBlock.
    struct Throttled {
        accepted: Vec<u8>,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.budget);
            self.budget -= n;
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn appends_flush_in_order_across_partial_writes() {
        let mut buf = WriteBuf::new(1024);
        assert_eq!(buf.append_line("first"), Append::Queued);
        assert_eq!(buf.append_line("second"), Append::Queued);
        let mut sink = Throttled { accepted: Vec::new(), budget: 4 };
        buf.flush_into(&mut sink).unwrap();
        assert_eq!(sink.accepted, b"firs");
        sink.budget = 1024;
        buf.flush_into(&mut sink).unwrap();
        assert_eq!(sink.accepted, b"first\nsecond\n");
        assert!(buf.is_empty());
    }

    #[test]
    fn overflow_refuses_without_queueing() {
        let mut buf = WriteBuf::new(8);
        assert_eq!(buf.append_line("abc"), Append::Queued); // 4 bytes
        assert_eq!(buf.append_line("defgh"), Append::Overflow); // 6 > remaining 4
        assert_eq!(buf.pending(), 4);
    }

    #[test]
    fn shed_preserves_the_partially_written_line_and_drops_the_rest() {
        let mut buf = WriteBuf::new(1024);
        buf.append_line("partial-line");
        buf.append_line("doomed-1");
        buf.append_line("doomed-2");
        let mut sink = Throttled { accepted: Vec::new(), budget: 3 };
        buf.flush_into(&mut sink).unwrap();
        assert_eq!(sink.accepted, b"par");

        buf.shed_to("{\"error\":\"slow\"}");
        sink.budget = 4096;
        buf.flush_into(&mut sink).unwrap();
        let text = String::from_utf8(sink.accepted).unwrap();
        // The torn line completes; the queued lines are gone; the error
        // line is last. Every line is intact.
        assert_eq!(text, "partial-line\n{\"error\":\"slow\"}\n");
    }

    #[test]
    fn shed_with_nothing_in_flight_keeps_only_the_error() {
        let mut buf = WriteBuf::new(16);
        buf.append_line("response-a");
        buf.shed_to("err");
        let mut sink = Throttled { accepted: Vec::new(), budget: 4096 };
        buf.flush_into(&mut sink).unwrap();
        assert_eq!(sink.accepted, b"err\n");
    }
}
