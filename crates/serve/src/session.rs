//! Session-pinned instances: the server-side half of the warm-start
//! delta path.
//!
//! A `create` verb pins an [`Instance`] plus its [`WarmCache`] under a
//! client-chosen name; `mutate` applies a [`distfl_instance::DeltaBatch`]
//! and keeps the warm structures in sync; a session `solve` dispatches
//! through [`distfl_core::SolverKind::solve_warm`], which is
//! bit-identical to a cold solve of the same instance — so pinning is
//! purely a performance choice, never a semantic one.
//!
//! The cache is a slab guarded by one mutex: the slab lock covers only
//! name → slot resolution (cheap), while each slot holds its state behind
//! its own `Arc<Mutex<_>>` so a long solve on one session never blocks
//! lookups or work on another. Capacity is LRU-bounded: creating a new
//! session at capacity evicts the least-recently-touched one (clients
//! observe that as `unknown_session` on their next verb — the same
//! response an explicit `drop` would produce). On shutdown the server
//! drains every admitted request first, then [`SessionCache::clear`]s the
//! slab, so no in-flight session job ever observes a vanishing session.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use distfl_core::warm::WarmCache;
use distfl_instance::Instance;

/// One pinned session: the current instance, the warm solver structures
/// kept in sync with it, and a mutation epoch.
#[derive(Debug)]
pub struct SessionState {
    /// The session's current instance.
    pub instance: Instance,
    /// Warm solver structures tracking `instance` delta-for-delta.
    pub warm: WarmCache,
    /// Mutation epoch: 0 at create, +1 per applied delta.
    pub epoch: u64,
}

impl SessionState {
    /// Pins `instance` with freshly built warm structures at epoch 0.
    pub fn new(instance: Instance) -> Self {
        let warm = WarmCache::new(&instance);
        SessionState { instance, warm, epoch: 0 }
    }
}

/// A shared handle to one session's state. Same-session requests in a
/// batch are serialized by the scheduler; the mutex covers the remaining
/// cross-shard races (two connections naming the same session).
pub type SessionHandle = Arc<Mutex<SessionState>>;

struct Slot {
    name: String,
    /// Logical LRU timestamp (slab clock tick of the last touch).
    last_used: u64,
    state: SessionHandle,
}

/// Slab storage: stable indices, freelist reuse, name index.
struct Slab {
    entries: Vec<Option<Slot>>,
    by_name: HashMap<String, usize>,
    free: Vec<usize>,
    clock: u64,
    capacity: usize,
}

impl Slab {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Index of the least-recently-used live slot, if any.
    fn lru(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.as_ref().map(|s| (index, s.last_used)))
            .min_by_key(|&(_, used)| used)
            .map(|(index, _)| index)
    }

    fn remove(&mut self, index: usize) {
        if let Some(slot) = self.entries[index].take() {
            self.by_name.remove(&slot.name);
            self.free.push(index);
        }
    }
}

/// The LRU-bounded slab of pinned sessions, shared by every shard.
pub struct SessionCache {
    slab: Mutex<Slab>,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` sessions (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SessionCache {
            slab: Mutex::new(Slab {
                entries: Vec::new(),
                by_name: HashMap::new(),
                free: Vec::new(),
                clock: 0,
                capacity,
            }),
        }
    }

    /// The configured session limit.
    pub fn capacity(&self) -> usize {
        self.slab.lock().unwrap().capacity
    }

    /// How many sessions are currently pinned.
    pub fn len(&self) -> usize {
        self.slab.lock().unwrap().by_name.len()
    }

    /// Whether no session is pinned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pins `instance` under `name`, replacing any previous instance held
    /// there. Returns the session handle and whether an existing session
    /// was replaced. At capacity, creating a *new* name evicts the
    /// least-recently-touched session first.
    pub fn create(&self, name: &str, instance: Instance) -> (SessionHandle, bool) {
        let state: SessionHandle = Arc::new(Mutex::new(SessionState::new(instance)));
        let mut slab = self.slab.lock().unwrap();
        let now = slab.tick();
        if let Some(&index) = slab.by_name.get(name) {
            let slot = slab.entries[index].as_mut().expect("indexed slot is live");
            slot.last_used = now;
            slot.state = Arc::clone(&state);
            return (state, true);
        }
        if slab.by_name.len() >= slab.capacity {
            if let Some(victim) = slab.lru() {
                slab.remove(victim);
            }
        }
        let slot = Slot { name: name.to_owned(), last_used: now, state: Arc::clone(&state) };
        let index = match slab.free.pop() {
            Some(index) => {
                slab.entries[index] = Some(slot);
                index
            }
            None => {
                slab.entries.push(Some(slot));
                slab.entries.len() - 1
            }
        };
        slab.by_name.insert(name.to_owned(), index);
        (state, false)
    }

    /// Resolves `name` to its session handle, bumping its LRU position.
    pub fn get(&self, name: &str) -> Option<SessionHandle> {
        let mut slab = self.slab.lock().unwrap();
        let now = slab.tick();
        let index = *slab.by_name.get(name)?;
        let slot = slab.entries[index].as_mut().expect("indexed slot is live");
        slot.last_used = now;
        Some(Arc::clone(&slot.state))
    }

    /// Releases the session under `name`; returns whether it existed.
    pub fn drop_session(&self, name: &str) -> bool {
        let mut slab = self.slab.lock().unwrap();
        match slab.by_name.get(name).copied() {
            Some(index) => {
                slab.remove(index);
                true
            }
            None => false,
        }
    }

    /// Releases every session — the shutdown drain's final step, called
    /// after all scheduler threads have joined so no in-flight job holds
    /// a handle.
    pub fn clear(&self) {
        let mut slab = self.slab.lock().unwrap();
        slab.entries.clear();
        slab.by_name.clear();
        slab.free.clear();
    }
}

impl std::fmt::Debug for SessionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slab = self.slab.lock().unwrap();
        f.debug_struct("SessionCache")
            .field("len", &slab.by_name.len())
            .field("capacity", &slab.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};

    fn instance(seed: u64) -> Instance {
        UniformRandom::new(3, 8).unwrap().generate(seed).unwrap()
    }

    #[test]
    fn create_get_drop_round_trip() {
        let cache = SessionCache::new(4);
        assert!(cache.is_empty());
        let (handle, replaced) = cache.create("a", instance(1));
        assert!(!replaced);
        assert_eq!(cache.len(), 1);
        let again = cache.get("a").unwrap();
        assert!(Arc::ptr_eq(&handle, &again));
        assert_eq!(again.lock().unwrap().epoch, 0);
        assert!(cache.get("b").is_none());
        assert!(cache.drop_session("a"));
        assert!(!cache.drop_session("a"), "second drop reports missing");
        assert!(cache.is_empty());
    }

    #[test]
    fn create_replaces_in_place() {
        let cache = SessionCache::new(4);
        let (first, _) = cache.create("a", instance(1));
        let (second, replaced) = cache.create("a", instance(2));
        assert!(replaced);
        assert!(!Arc::ptr_eq(&first, &second), "replacement builds fresh state");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_the_coldest_session() {
        let cache = SessionCache::new(2);
        cache.create("a", instance(1));
        cache.create("b", instance(2));
        // Touch "a" so "b" is the LRU victim.
        cache.get("a").unwrap();
        cache.create("c", instance(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "LRU session evicted");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn freelist_reuses_slots() {
        let cache = SessionCache::new(8);
        for round in 0..3 {
            cache.create("x", instance(round));
            assert!(cache.drop_session("x"));
        }
        let slab = cache.slab.lock().unwrap();
        assert!(slab.entries.len() <= 1, "dropped slots are reused, not appended");
    }

    #[test]
    fn clear_releases_everything() {
        let cache = SessionCache::new(4);
        cache.create("a", instance(1));
        cache.create("b", instance(2));
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
    }
}
