//! The `distfl-serve` binary: run the batching solver service.
//!
//! ```text
//! distfl-serve [ADDR] [--queue-capacity N] [--max-batch N] [--workers N]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7411`. The process serves until a
//! client sends `{"cmd":"shutdown"}`, then drains in-flight requests and
//! exits. Set `DISTFL_TRACE=1` to record request spans and the
//! `serve.*` metrics in the observability registry.

use distfl_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: distfl-serve [ADDR] [--queue-capacity N] [--max-batch N] [--workers N]\n\
         \n\
         ADDR               listen address (default 127.0.0.1:7411)\n\
         --queue-capacity N admission queue bound (default 256)\n\
         --max-batch N      max requests per scheduler batch (default 16)\n\
         --workers N        pool workers (default: process-wide global pool)"
    );
    std::process::exit(2);
}

fn main() {
    distfl_obs::init_from_env();
    let mut addr = "127.0.0.1:7411".to_owned();
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {what} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--queue-capacity" => config.queue_capacity = number("--queue-capacity").max(1),
            "--max-batch" => config.max_batch = number("--max-batch").max(1),
            "--workers" => config.workers = Some(number("--workers")),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => addr = other.to_owned(),
            _ => usage(),
        }
    }

    let server = match Server::start(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("distfl-serve listening on {}", server.local_addr());
    server.wait();
    println!("distfl-serve drained and stopped");
}
