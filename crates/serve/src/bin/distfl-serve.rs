//! The `distfl-serve` binary: run the batching solver service.
//!
//! ```text
//! distfl-serve [ADDR] [--queue-capacity N] [--max-batch N] [--workers N]
//!              [--shards N] [--write-buffer BYTES] [--reactor KIND]
//!              [--sock-sndbuf BYTES] [--sessions N]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7411`. The process serves until a
//! client sends `{"cmd":"shutdown"}`, then drains in-flight requests and
//! exits. Set `DISTFL_TRACE=1` to record request spans and the
//! `serve.*` metrics in the observability registry.

use distfl_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: distfl-serve [ADDR] [--queue-capacity N] [--max-batch N] [--workers N]\n\
         \x20                   [--shards N] [--write-buffer BYTES] [--reactor KIND]\n\
         \x20                   [--sock-sndbuf BYTES] [--sessions N]\n\
         \n\
         ADDR                listen address (default 127.0.0.1:7411)\n\
         --queue-capacity N  admission queue bound, per shard (default 256)\n\
         --max-batch N       max requests per scheduler batch (default 16)\n\
         --workers N         pool workers (default: process-wide global pool)\n\
         --shards N          admission shards / scheduler threads\n\
         \x20                   (default 0 = available parallelism)\n\
         --write-buffer B    per-connection write buffer cap in bytes\n\
         \x20                   (default 262144; slow readers past it are shed)\n\
         --reactor KIND      readiness backend: auto | epoll | poll | sweep\n\
         \x20                   (default auto)\n\
         --sock-sndbuf B     clamp each connection's kernel send buffer\n\
         \x20                   (SO_SNDBUF; default: kernel default)\n\
         --sessions N        max pinned sessions before LRU eviction\n\
         \x20                   (default 64)"
    );
    std::process::exit(2);
}

fn main() {
    distfl_obs::init_from_env();
    let mut addr = "127.0.0.1:7411".to_owned();
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                usage()
            })
        };
        let number = |what: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {what} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--queue-capacity" => {
                let raw = value("--queue-capacity");
                config.queue_capacity = number("--queue-capacity", raw).max(1);
            }
            "--max-batch" => {
                let raw = value("--max-batch");
                config.max_batch = number("--max-batch", raw).max(1);
            }
            "--workers" => {
                let raw = value("--workers");
                config.workers = Some(number("--workers", raw));
            }
            "--shards" => {
                let raw = value("--shards");
                config.shards = number("--shards", raw);
            }
            "--write-buffer" => {
                let raw = value("--write-buffer");
                config.write_buffer_cap = number("--write-buffer", raw).max(1024);
            }
            "--sock-sndbuf" => {
                let raw = value("--sock-sndbuf");
                config.sock_send_buffer = Some(number("--sock-sndbuf", raw));
            }
            "--sessions" => {
                let raw = value("--sessions");
                config.session_capacity = number("--sessions", raw).max(1);
            }
            "--reactor" => {
                let raw = value("--reactor");
                config.reactor = raw.parse().unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    usage()
                });
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => addr = other.to_owned(),
            _ => usage(),
        }
    }

    let server = match Server::start(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "distfl-serve listening on {} ({} shard{})",
        server.local_addr(),
        server.shards(),
        if server.shards() == 1 { "" } else { "s" }
    );
    server.wait();
    println!("distfl-serve drained and stopped");
}
