//! Pipelined NDJSON framing: slicing complete request lines out of a
//! nonblocking read stream.
//!
//! The reactor reads whatever bytes a socket has ready — which may hold
//! several complete requests, a fraction of one, or a split that lands
//! mid-escape or mid-UTF-8 — and feeds them to a [`LineFramer`]. The
//! framer yields every *complete* line as a borrowed slice (zero-copy
//! when a read chunk already ends on a line boundary; only a trailing
//! partial line is buffered between reads), so a burst of pipelined
//! requests is parsed and admitted as one group instead of one request
//! per scheduler tick.
//!
//! Framing is defined purely over bytes: a line is everything up to the
//! next `\n` (a trailing `\r` is stripped). That makes the framing
//! invariant under arbitrary read-chunk splits — the property pinned by
//! `tests/framing_properties.rs`. UTF-8 validation happens later, per
//! line, in the protocol layer.
//!
//! Oversized lines (no newline within [`LineFramer::max_line`] bytes) are
//! reported once as [`Framed::Oversized`] and skipped through their
//! terminating newline, bounding memory without desynchronizing the
//! stream.

/// One framing outcome passed to the [`LineFramer::feed`] callback.
#[derive(Debug, PartialEq, Eq)]
pub enum Framed<'a> {
    /// A complete line, `\n` (and any trailing `\r`) stripped.
    Line(&'a [u8]),
    /// A line exceeded the size limit; `dropped` bytes of it were
    /// discarded (the rest of the line, through its newline, is skipped
    /// too). Reported once per oversized line.
    Oversized {
        /// Bytes discarded when the limit tripped.
        dropped: usize,
    },
}

/// Reassembles NDJSON lines from arbitrarily split byte chunks.
#[derive(Debug)]
pub struct LineFramer {
    /// Trailing partial line carried between feeds.
    partial: Vec<u8>,
    /// Hard cap on one line's length.
    max_line: usize,
    /// Inside an oversized line, discarding through its newline.
    skipping: bool,
}

impl LineFramer {
    /// A framer that refuses lines longer than `max_line` bytes.
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer { partial: Vec::new(), max_line: max_line.max(1), skipping: false }
    }

    /// The configured per-line byte limit.
    pub fn max_line(&self) -> usize {
        self.max_line
    }

    /// Bytes of an incomplete line currently buffered.
    pub fn buffered(&self) -> usize {
        self.partial.len()
    }

    /// Consumes one read chunk, invoking `on` for every line completed by
    /// it (in order). Complete lines whose bytes all sit inside `chunk`
    /// are passed as slices of `chunk` — no copy; only a trailing partial
    /// line is retained.
    pub fn feed<'a>(&mut self, chunk: &'a [u8], on: &mut dyn FnMut(Framed<'_>)) {
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (line_end, after) = (&rest[..nl], &rest[nl + 1..]);
            if self.skipping {
                // The terminator of an oversized line: resynchronize.
                self.skipping = false;
            } else if self.partial.is_empty() {
                on(Framed::Line(strip_cr(line_end)));
            } else {
                self.partial.extend_from_slice(line_end);
                // Move out to satisfy the borrow checker, then restore the
                // (now empty) allocation for reuse.
                let mut line = std::mem::take(&mut self.partial);
                on(Framed::Line(strip_cr(&line)));
                line.clear();
                self.partial = line;
            }
            rest = after;
        }
        if self.skipping {
            return;
        }
        if self.partial.len() + rest.len() > self.max_line {
            let dropped = self.partial.len() + rest.len();
            self.partial.clear();
            self.skipping = true;
            on(Framed::Oversized { dropped });
            return;
        }
        self.partial.extend_from_slice(rest);
    }
}

/// Strips one trailing `\r` (CRLF clients).
fn strip_cr(line: &[u8]) -> &[u8] {
    match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `chunks` and collects owned framing outcomes.
    fn collect(framer: &mut LineFramer, chunks: &[&[u8]]) -> Vec<(Option<Vec<u8>>, usize)> {
        let mut out = Vec::new();
        for chunk in chunks {
            framer.feed(chunk, &mut |framed| match framed {
                Framed::Line(line) => out.push((Some(line.to_vec()), 0)),
                Framed::Oversized { dropped } => out.push((None, dropped)),
            });
        }
        out
    }

    #[test]
    fn splits_multiple_lines_in_one_chunk() {
        let mut framer = LineFramer::new(1024);
        let got = collect(&mut framer, &[b"a\nbb\r\nccc\nd"]);
        let lines: Vec<_> = got.iter().map(|(l, _)| l.clone().unwrap()).collect();
        assert_eq!(lines, vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]);
        assert_eq!(framer.buffered(), 1, "trailing partial retained");
    }

    #[test]
    fn reassembles_across_byte_at_a_time_feeds() {
        let mut framer = LineFramer::new(1024);
        let text = b"hello\nworld\n";
        let chunks: Vec<&[u8]> = text.chunks(1).collect();
        let got = collect(&mut framer, &chunks);
        let lines: Vec<_> = got.iter().map(|(l, _)| l.clone().unwrap()).collect();
        assert_eq!(lines, vec![b"hello".to_vec(), b"world".to_vec()]);
        assert_eq!(framer.buffered(), 0);
    }

    #[test]
    fn oversized_lines_are_reported_once_and_skipped_to_the_newline() {
        let mut framer = LineFramer::new(4);
        let got = collect(&mut framer, &[b"toolong", b"er\nok\n"]);
        assert_eq!(got[0], (None, 7), "limit trips at first overflowing feed");
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].0.as_deref(), Some(b"ok".as_slice()), "resynchronized after newline");
    }

    #[test]
    fn empty_lines_pass_through() {
        let mut framer = LineFramer::new(64);
        let got = collect(&mut framer, &[b"\n\nx\n"]);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0.as_deref(), Some(b"".as_slice()));
        assert_eq!(got[2].0.as_deref(), Some(b"x".as_slice()));
    }
}
