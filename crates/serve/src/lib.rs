//! # distfl-serve
//!
//! The outward-facing layer of the `distfl` workspace: a TCP solver
//! service that accepts **newline-delimited JSON** solve requests,
//! batches them through a bounded admission queue onto the shared
//! [`distfl_pool::WorkerPool`], and streams back deterministic responses.
//!
//! Pipeline: request line → [`proto`] parse → [`queue::Admission`]
//! (bounded; full = typed `queue_full` error, never a hang) →
//! [`scheduler`] batch → pool workers ([`distfl_core::SolverKind`]
//! dispatch) → response line. Per-request spans and the
//! `serve.requests` / `serve.queue_depth` / `serve.batch_size` metrics
//! land in the [`distfl_obs`] registry when tracing is enabled.
//!
//! Responses are **byte-deterministic**: for a fixed request line and
//! seed, the response bytes are identical across server restarts, worker
//! counts, and batch compositions. Shutdown is a **graceful drain**
//! (`{"cmd":"shutdown"}` or [`Server::shutdown`]): everything admitted
//! is answered before the server exits.
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use distfl_serve::{ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::start("127.0.0.1:0", ServeConfig::default())?;
//! let mut conn = TcpStream::connect(server.local_addr())?;
//! writeln!(
//!     conn,
//!     r#"{{"id":"r1","solver":"greedy","instance":{{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}}}"#
//! )?;
//! let mut response = String::new();
//! BufReader::new(&conn).read_line(&mut response)?;
//! assert!(response.contains(r#""id":"r1","ok":true"#), "{response}");
//! assert!(response.contains(r#""cost":5.5"#), "{response}");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod proto;
pub mod queue;
pub mod scheduler;
mod server;

pub use server::{BatchHook, ServeConfig, Server};
