//! # distfl-serve
//!
//! The outward-facing layer of the `distfl` workspace: a TCP solver
//! service that accepts **newline-delimited JSON** solve requests,
//! batches them through a bounded admission queue onto the shared
//! [`distfl_pool::WorkerPool`], and streams back deterministic responses.
//!
//! Pipeline: a readiness-driven **reactor** ([`reactor`]: epoll on
//! Linux, poll elsewhere on Unix) owns every socket nonblocking →
//! pipelined NDJSON framing ([`frame`]) slices complete lines out of
//! each read burst → [`proto`] parse → per-core **sharded admission**
//! (the burst enters one of N [`queue::Admission`] queues as a single
//! group; full = typed `queue_full` error, never a hang) →
//! [`scheduler`] batch → pool workers ([`distfl_core::SolverKind`]
//! dispatch) → bounded per-connection write buffer (overflow = the
//! client is shed with a typed `slow_reader` error, never unbounded
//! memory). Per-request spans and the `serve.requests` /
//! `serve.bytes_read` / `serve.bytes_written` /
//! `serve.pipelined_requests` / `serve.reactor_wakeups` /
//! `serve.open_connections` / `serve.queue_depth` /
//! `serve.batch_size` metrics land in the [`distfl_obs`] registry when
//! tracing is enabled.
//!
//! Responses are **byte-deterministic**: for a fixed request line and
//! seed, the response bytes are identical across server restarts, worker
//! counts, and batch compositions. Shutdown is a **graceful drain**
//! (`{"cmd":"shutdown"}` or [`Server::shutdown`]): everything admitted
//! is answered before the server exits.
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use distfl_serve::{ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::start("127.0.0.1:0", ServeConfig::default())?;
//! let mut conn = TcpStream::connect(server.local_addr())?;
//! writeln!(
//!     conn,
//!     r#"{{"id":"r1","solver":"greedy","instance":{{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}}}"#
//! )?;
//! let mut response = String::new();
//! BufReader::new(&conn).read_line(&mut response)?;
//! assert!(response.contains(r#""id":"r1","ok":true"#), "{response}");
//! assert!(response.contains(r#""cost":5.5"#), "{response}");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

// Unsafe is denied crate-wide; the single exception is the raw syscall
// shim in `reactor::sys` (epoll/poll/setsockopt FFI), which opts back in
// locally with `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conn;
pub mod frame;
pub mod json;
pub mod proto;
pub mod queue;
pub mod reactor;
pub mod scheduler;
mod server;
pub mod session;

pub use server::{BatchHook, ServeConfig, Server};
