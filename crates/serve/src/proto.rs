//! The serve wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! Every line the client sends is one JSON object; every line the server
//! sends back is one JSON object. Two request shapes exist:
//!
//! **Solve request** — names a solver and carries the instance either
//! inline or as an OR-Library payload:
//!
//! ```json
//! {"id":"r1","solver":"greedy","seed":7,
//!  "instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}
//! {"id":"r2","solver":"paydual","orlib":"2 1\n0 4\n0 3\n0\n1 2\n"}
//! ```
//!
//! `opening` lists the opening cost of each facility; `links[j]` is a
//! flat `[facility, cost, facility, cost, ...]` pair list for client `j`.
//! `seed` is optional (default 0) and only affects randomized solvers.
//!
//! **Command** — `{"cmd":"ping"}` (liveness probe) or
//! `{"cmd":"shutdown"}` (the SIGTERM-equivalent: acknowledge, stop
//! admitting, drain, exit).
//!
//! Responses echo the request `id` and are *byte-deterministic*: for a
//! fixed request and seed the response line is identical across restarts
//! and worker counts. Success:
//!
//! ```json
//! {"id":"r1","ok":true,"solver":"greedy","seed":7,"cost":5.5,
//!  "open":[0],"rounds":null,"span":"a93c4f0212d08e11"}
//! ```
//!
//! `rounds` is the CONGEST round count for distributed solvers and
//! `null` for sequential ones. `span` is the request's span id — the
//! FNV-1a hash of the request line, which also tags the `serve`-category
//! span recorded in the `distfl-obs` registry, so a trace of a live
//! request can be joined to its response. Errors are typed:
//!
//! ```json
//! {"id":"r3","ok":false,"error":{"kind":"queue_full",
//!  "detail":"admission queue at capacity 256"},"span":"..."}
//! ```
//!
//! with `kind` one of `malformed_request`, `invalid_instance`,
//! `queue_full`, `solver_failed`, `shutting_down`, `slow_reader` (the
//! connection's bounded write buffer overflowed and the connection is
//! being shed).

use distfl_core::SolverKind;
use distfl_instance::{Cost, FacilityId, Instance, InstanceBuilder};
use distfl_obs::JsonWriter;

use crate::json::Json;

/// Limit on request ids, to keep response lines and span labels bounded.
const MAX_ID_LEN: usize = 128;

/// How a request supplies its instance.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceSource {
    /// Inline `{"opening":[...],"links":[[...]]}` object, already
    /// validated and built.
    Inline(Instance),
    /// An OR-Library text payload, parsed on the worker (so oversized
    /// payloads do not stall the connection thread).
    OrLib(String),
}

/// One admitted solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed on the response.
    pub id: String,
    /// Which solver to dispatch to.
    pub solver: SolverKind,
    /// Seed for randomized solvers (default 0).
    pub seed: u64,
    /// The instance payload.
    pub source: InstanceSource,
    /// FNV-1a hash of the request line: the span id on the response and
    /// on the `serve.request` obs span.
    pub span_id: u64,
}

/// Control commands, handled on the connection thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe; answered with `{"ok":true,"pong":true}`.
    Ping,
    /// Graceful drain: acknowledge, then stop admitting and exit once
    /// in-flight requests have been answered.
    Shutdown,
}

/// A successfully parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// A solve request, ready for admission.
    Request(Box<Request>),
    /// A control command.
    Command(Command),
}

/// Error categories the protocol reports to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON or misses/mistypes required fields.
    MalformedRequest,
    /// The instance payload does not describe a valid instance (parse
    /// errors carry OR-Library line numbers).
    InvalidInstance,
    /// The admission queue is at capacity; retry later.
    QueueFull,
    /// The solver rejected the request (e.g. invalid parameters).
    SolverFailed,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// The connection's bounded write buffer overflowed because the
    /// client stopped draining its socket; the connection is shed.
    SlowReader,
}

impl ErrorKind {
    /// The wire name of the category.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::MalformedRequest => "malformed_request",
            ErrorKind::InvalidInstance => "invalid_instance",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::SolverFailed => "solver_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::SlowReader => "slow_reader",
        }
    }
}

/// A typed protocol error: category, human detail, and the request id if
/// one was recovered from the line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Category reported as `error.kind`.
    pub kind: ErrorKind,
    /// Human-readable detail reported as `error.detail`.
    pub detail: String,
    /// The request id, when the line was parsed far enough to know it.
    pub id: Option<String>,
}

impl ServeError {
    /// A malformed-request error with no recovered id.
    fn malformed(detail: impl Into<String>) -> Self {
        ServeError { kind: ErrorKind::MalformedRequest, detail: detail.into(), id: None }
    }
}

/// FNV-1a 64-bit hash of `bytes` — the deterministic span id of a
/// request line (no RNG, no clock: restarts reproduce it).
pub fn span_id(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parses one request line into a solve request or command.
///
/// # Errors
///
/// Returns a typed [`ServeError`] (always `malformed_request` or
/// `invalid_instance`) carrying the request id when it was recoverable.
pub fn parse_line(line: &str) -> Result<Parsed, ServeError> {
    let value = Json::parse(line)
        .map_err(|e| ServeError::malformed(format!("request is not valid JSON: {e}")))?;
    if let Some(cmd) = value.get("cmd") {
        return match cmd.as_str() {
            Some("ping") => Ok(Parsed::Command(Command::Ping)),
            Some("shutdown") => Ok(Parsed::Command(Command::Shutdown)),
            _ => Err(ServeError::malformed("unknown cmd (expected ping or shutdown)")),
        };
    }

    let id = match value.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_ID_LEN => s.clone(),
        Some(Json::Str(_)) => {
            return Err(ServeError::malformed(format!("id must be 1..={MAX_ID_LEN} characters")))
        }
        Some(_) => return Err(ServeError::malformed("id must be a string")),
        None => return Err(ServeError::malformed("missing field: id")),
    };
    let fail = |kind: ErrorKind, detail: String| ServeError { kind, detail, id: Some(id.clone()) };

    let solver = match value.get("solver").and_then(Json::as_str) {
        Some(name) => name
            .parse::<SolverKind>()
            .map_err(|e| fail(ErrorKind::MalformedRequest, e.to_string()))?,
        None => return Err(fail(ErrorKind::MalformedRequest, "missing field: solver".into())),
    };
    let seed = match value.get("seed") {
        None => 0,
        Some(v) => v.as_u64().ok_or_else(|| {
            fail(ErrorKind::MalformedRequest, "seed must be a non-negative integer".into())
        })?,
    };

    let source = match (value.get("instance"), value.get("orlib")) {
        (Some(inline), None) => InstanceSource::Inline(
            build_inline(inline).map_err(|detail| fail(ErrorKind::InvalidInstance, detail))?,
        ),
        (None, Some(Json::Str(payload))) => InstanceSource::OrLib(payload.clone()),
        (None, Some(_)) => {
            return Err(fail(ErrorKind::MalformedRequest, "orlib must be a string".into()))
        }
        (Some(_), Some(_)) => {
            return Err(fail(
                ErrorKind::MalformedRequest,
                "give either instance or orlib, not both".into(),
            ))
        }
        (None, None) => {
            return Err(fail(
                ErrorKind::MalformedRequest,
                "missing field: instance or orlib".into(),
            ))
        }
    };

    Ok(Parsed::Request(Box::new(Request {
        id,
        solver,
        seed,
        source,
        span_id: span_id(line.as_bytes()),
    })))
}

/// Builds an [`Instance`] from the inline `{"opening", "links"}` shape.
fn build_inline(value: &Json) -> Result<Instance, String> {
    let opening = value
        .get("opening")
        .and_then(Json::as_array)
        .ok_or("instance.opening must be an array of opening costs")?;
    let links = value
        .get("links")
        .and_then(Json::as_array)
        .ok_or("instance.links must be an array (one pair list per client)")?;

    let mut builder = InstanceBuilder::new();
    let mut fids = Vec::with_capacity(opening.len());
    for (index, cost) in opening.iter().enumerate() {
        let cost = cost.as_f64().ok_or_else(|| format!("opening[{index}] is not a number"))?;
        let cost = Cost::new(cost).map_err(|e| format!("opening[{index}]: {e}"))?;
        fids.push(builder.add_facility(cost));
    }
    for (j, pairs) in links.iter().enumerate() {
        let pairs = pairs.as_array().ok_or_else(|| format!("links[{j}] is not a pair array"))?;
        if pairs.len() % 2 != 0 {
            return Err(format!("links[{j}] must hold (facility, cost) pairs"));
        }
        let client = builder.add_client();
        for pair in pairs.chunks(2) {
            let facility = pair[0]
                .as_u64()
                .ok_or_else(|| format!("links[{j}]: facility index is not an integer"))?;
            let facility = usize::try_from(facility).expect("u64 fits usize on 64-bit");
            if facility >= fids.len() {
                return Err(format!(
                    "links[{j}]: facility index {facility} out of range ({} facilities)",
                    fids.len()
                ));
            }
            let cost =
                pair[1].as_f64().ok_or_else(|| format!("links[{j}]: cost is not a number"))?;
            let cost = Cost::new(cost).map_err(|e| format!("links[{j}]: {e}"))?;
            builder
                .link(client, FacilityId::new(facility as u32), cost)
                .map_err(|e| format!("links[{j}]: {e}"))?;
        }
    }
    builder.build().map_err(|e| e.to_string())
}

/// Renders `span_id` the way responses carry it: 16 lowercase hex digits.
pub fn span_hex(span_id: u64) -> String {
    format!("{span_id:016x}")
}

/// Renders a success response line (no trailing newline).
pub fn render_success(request: &Request, cost: f64, open: &[usize], rounds: Option<u32>) -> String {
    let mut w = JsonWriter::object();
    w.key("id").string(&request.id);
    w.key("ok").boolean(true);
    w.key("solver").string(request.solver.name());
    w.key("seed").number_u64(request.seed);
    w.key("cost").number(cost);
    w.key("open").begin_array();
    for &i in open {
        w.number_u64(i as u64);
    }
    w.end_array();
    match rounds {
        Some(r) => w.key("rounds").number_u64(u64::from(r)),
        None => w.key("rounds").null(),
    };
    w.key("span").string(&span_hex(request.span_id));
    w.finish()
}

/// Renders a typed error response line (no trailing newline). `span_id`
/// is 0 when the line never parsed far enough to hash meaningfully.
pub fn render_error(error: &ServeError, span_id: u64) -> String {
    let mut w = JsonWriter::object();
    match &error.id {
        Some(id) => w.key("id").string(id),
        None => w.key("id").null(),
    };
    w.key("ok").boolean(false);
    w.key("error").begin_object();
    w.key("kind").string(error.kind.as_str());
    w.key("detail").string(&error.detail);
    w.end_object();
    w.key("span").string(&span_hex(span_id));
    w.finish()
}

/// Renders the acknowledgement for a [`Command`].
pub fn render_command_ack(cmd: Command) -> String {
    let mut w = JsonWriter::object();
    w.key("ok").boolean(true);
    match cmd {
        Command::Ping => w.key("pong").boolean(true),
        Command::Shutdown => w.key("shutdown").boolean(true),
    };
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const INLINE: &str = r#"{"id":"r1","solver":"greedy","seed":3,"instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#;

    #[test]
    fn parses_an_inline_request() {
        let parsed = parse_line(INLINE).unwrap();
        let Parsed::Request(req) = parsed else { panic!("expected a request") };
        assert_eq!(req.id, "r1");
        assert_eq!(req.solver, SolverKind::Greedy);
        assert_eq!(req.seed, 3);
        let InstanceSource::Inline(inst) = &req.source else { panic!("expected inline") };
        assert_eq!(inst.num_facilities(), 2);
        assert_eq!(inst.num_clients(), 2);
        assert_eq!(req.span_id, span_id(INLINE.as_bytes()));
    }

    #[test]
    fn parses_an_orlib_request_lazily() {
        let line = r#"{"id":"x","solver":"jv","orlib":"2 1\n0 4\n0 3\n0\n1 2\n"}"#;
        let Parsed::Request(req) = parse_line(line).unwrap() else { panic!() };
        assert!(matches!(req.source, InstanceSource::OrLib(_)));
        assert_eq!(req.seed, 0, "seed defaults to 0");
    }

    #[test]
    fn commands_parse() {
        assert_eq!(parse_line(r#"{"cmd":"ping"}"#).unwrap(), Parsed::Command(Command::Ping));
        assert_eq!(
            parse_line(r#"{"cmd":"shutdown"}"#).unwrap(),
            Parsed::Command(Command::Shutdown)
        );
        assert!(parse_line(r#"{"cmd":"reboot"}"#).is_err());
    }

    #[test]
    fn malformed_lines_keep_the_id_when_recoverable() {
        let err = parse_line(r#"{"id":"r9","solver":"simplex","orlib":"x"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::MalformedRequest);
        assert_eq!(err.id.as_deref(), Some("r9"));
        let err = parse_line("not json").unwrap_err();
        assert_eq!(err.kind, ErrorKind::MalformedRequest);
        assert_eq!(err.id, None);
    }

    #[test]
    fn inline_validation_is_typed_invalid_instance() {
        let line =
            r#"{"id":"r2","solver":"greedy","instance":{"opening":[1.0],"links":[[5,1.0]]}}"#;
        let err = parse_line(line).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidInstance);
        assert!(err.detail.contains("out of range"), "{}", err.detail);
    }

    #[test]
    fn responses_are_wellformed_json() {
        let Parsed::Request(req) = parse_line(INLINE).unwrap() else { panic!() };
        let ok = render_success(&req, 5.5, &[0, 2], Some(17));
        distfl_obs::validate_json(&ok).unwrap();
        assert!(ok.contains("\"rounds\":17"), "{ok}");
        let err = render_error(
            &ServeError { kind: ErrorKind::QueueFull, detail: "full".into(), id: Some("a".into()) },
            7,
        );
        distfl_obs::validate_json(&err).unwrap();
        assert!(err.contains("\"kind\":\"queue_full\""), "{err}");
        assert!(err.contains("\"span\":\"0000000000000007\""), "{err}");
        distfl_obs::validate_json(&render_command_ack(Command::Ping)).unwrap();
    }

    #[test]
    fn span_ids_are_stable() {
        // FNV-1a is part of the wire contract (byte-deterministic
        // responses across restarts); pin a reference value.
        assert_eq!(span_id(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(span_id(INLINE.as_bytes()), span_id(INLINE.as_bytes()));
    }
}
