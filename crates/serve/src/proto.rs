//! The serve wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! Every line the client sends is one JSON object; every line the server
//! sends back is one JSON object. Two request shapes exist:
//!
//! **Solve request** — names a solver and carries the instance either
//! inline or as an OR-Library payload:
//!
//! ```json
//! {"id":"r1","solver":"greedy","seed":7,
//!  "instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}
//! {"id":"r2","solver":"paydual","orlib":"2 1\n0 4\n0 3\n0\n1 2\n"}
//! ```
//!
//! `opening` lists the opening cost of each facility; `links[j]` is a
//! flat `[facility, cost, facility, cost, ...]` pair list for client `j`.
//! `seed` is optional (default 0) and only affects randomized solvers.
//!
//! **Command** — `{"cmd":"ping"}` (liveness probe) or
//! `{"cmd":"shutdown"}` (the SIGTERM-equivalent: acknowledge, stop
//! admitting, drain, exit).
//!
//! **Session verbs** — a connection can pin an instance server-side and
//! stream cheap mutations at it instead of re-uploading after every
//! change (the warm-start delta path; see `distfl_core::warm`):
//!
//! ```json
//! {"cmd":"create","id":"c1","session":"s1",
//!  "instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}
//! {"cmd":"mutate","id":"m1","session":"s1",
//!  "delta":{"remove":[1],"reprice":[[0,0,1.5]],"add":[[1,0.25]]}}
//! {"cmd":"solve","id":"s1q","session":"s1","solver":"greedy","seed":7}
//! {"cmd":"drop","id":"d1","session":"s1"}
//! ```
//!
//! `delta.remove` lists client ids to delete (pre-mutation ids),
//! `delta.reprice` holds `[client, facility, cost]` triples over existing
//! links, and `delta.add` appends new clients as flat
//! `[facility, cost, ...]` pair lists. A session `solve` runs the named
//! solver against the session's current instance through its warm cache —
//! bit-identical to a stateless solve of the same instance. The verb set
//! is defined once in [`COMMANDS`]; the "unknown cmd" error text derives
//! from it, so the message cannot drift as verbs land.
//!
//! Responses echo the request `id` and are *byte-deterministic*: for a
//! fixed request and seed the response line is identical across restarts
//! and worker counts. Success:
//!
//! ```json
//! {"id":"r1","ok":true,"solver":"greedy","seed":7,"cost":5.5,
//!  "open":[0],"rounds":null,"span":"a93c4f0212d08e11"}
//! ```
//!
//! `rounds` is the CONGEST round count for distributed solvers and
//! `null` for sequential ones. A request with `"solver":"auto"` is routed
//! by the instance classifier (`distfl_instance::classify` through
//! `SolverKind::resolve`) and its response additionally carries
//! `"routed":"<concrete kind>"` right after `solver`; concrete-kind
//! responses never carry the field, so their bytes are unchanged by the
//! portfolio. `span` is the request's span id — the
//! FNV-1a hash of the request line, which also tags the `serve`-category
//! span recorded in the `distfl-obs` registry, so a trace of a live
//! request can be joined to its response. Errors are typed:
//!
//! ```json
//! {"id":"r3","ok":false,"error":{"kind":"queue_full",
//!  "detail":"admission queue at capacity 256"},"span":"..."}
//! ```
//!
//! with `kind` one of `malformed_request`, `invalid_instance`,
//! `queue_full`, `solver_failed`, `shutting_down`, `unknown_session`
//! (a session verb named a session the server does not hold — never
//! created, dropped, or evicted), `slow_reader` (the connection's bounded
//! write buffer overflowed and the connection is being shed).

use distfl_core::SolverKind;
use distfl_instance::{Cost, FacilityId, Instance, InstanceBuilder};
use distfl_obs::JsonWriter;

use crate::json::Json;

/// Limit on request ids, to keep response lines and span labels bounded.
const MAX_ID_LEN: usize = 128;

/// How a request supplies its instance.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceSource {
    /// Inline `{"opening":[...],"links":[[...]]}` object, already
    /// validated and built.
    Inline(Instance),
    /// An OR-Library text payload, parsed on the worker (so oversized
    /// payloads do not stall the connection thread).
    OrLib(String),
}

/// A parsed `delta` payload for the `mutate` verb, in raw wire ids (the
/// executor converts and validates against the session's instance).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaSpec {
    /// Client ids to remove (pre-mutation ids).
    pub remove: Vec<u32>,
    /// `(client, facility, new cost)` reprices over existing links.
    pub reprice: Vec<(u32, u32, f64)>,
    /// New clients, each a `(facility, cost)` link list.
    pub add: Vec<Vec<(u32, f64)>>,
}

/// What an admitted request asks the scheduler to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Stateless solve: build the instance from the payload, dispatch,
    /// discard.
    Solve {
        /// Which solver to dispatch to.
        solver: SolverKind,
        /// Seed for randomized solvers (default 0).
        seed: u64,
        /// The instance payload.
        source: InstanceSource,
    },
    /// Pin an instance under a session name (replacing any previous
    /// instance held under it).
    Create {
        /// The session to create or replace.
        session: String,
        /// The instance payload.
        source: InstanceSource,
    },
    /// Apply a delta batch to a pinned session's instance.
    Mutate {
        /// The session to mutate.
        session: String,
        /// The parsed delta payload.
        delta: DeltaSpec,
    },
    /// Solve a pinned session's current instance through its warm cache.
    SessionSolve {
        /// The session to solve.
        session: String,
        /// Which solver to dispatch to.
        solver: SolverKind,
        /// Seed for randomized solvers (default 0).
        seed: u64,
    },
    /// Release a pinned session.
    Drop {
        /// The session to drop.
        session: String,
    },
}

impl Action {
    /// The session this action touches, if any — the scheduler groups
    /// same-session actions of a batch into one serial unit so a
    /// connection's create → mutate → solve pipeline executes in
    /// admission order.
    pub fn session(&self) -> Option<&str> {
        match self {
            Action::Solve { .. } => None,
            Action::Create { session, .. }
            | Action::Mutate { session, .. }
            | Action::SessionSolve { session, .. }
            | Action::Drop { session } => Some(session),
        }
    }
}

/// One admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed on the response.
    pub id: String,
    /// What to do.
    pub action: Action,
    /// FNV-1a hash of the request line: the span id on the response and
    /// on the `serve.request` obs span.
    pub span_id: u64,
}

/// Control commands, handled on the connection thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe; answered with `{"ok":true,"pong":true}`.
    Ping,
    /// Graceful drain: acknowledge, then stop admitting and exit once
    /// in-flight requests have been answered.
    Shutdown,
}

/// How each registered `cmd` verb is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verb {
    /// Answered on the connection thread ([`Command`]).
    Control(Command),
    /// Admitted to a shard queue as a session action.
    Create,
    /// Admitted as a mutate action.
    Mutate,
    /// Admitted as a session solve action.
    SessionSolve,
    /// Admitted as a drop action.
    Drop,
}

/// The single registry of every `cmd` verb the protocol accepts. Parsing
/// dispatches through this table and the "unknown cmd" error text is
/// derived from it, so the two cannot drift apart as verbs land.
pub const COMMANDS: [&str; 6] = ["ping", "shutdown", "create", "mutate", "solve", "drop"];

/// Wire name → handling, in [`COMMANDS`] order.
const VERBS: [(&str, Verb); 6] = [
    ("ping", Verb::Control(Command::Ping)),
    ("shutdown", Verb::Control(Command::Shutdown)),
    ("create", Verb::Create),
    ("mutate", Verb::Mutate),
    ("solve", Verb::SessionSolve),
    ("drop", Verb::Drop),
];

/// The error detail for an unrecognized `cmd`, derived from [`COMMANDS`].
pub fn unknown_cmd_detail() -> String {
    let mut names = String::new();
    for (index, name) in COMMANDS.iter().enumerate() {
        if index > 0 {
            names.push_str(if index + 1 == COMMANDS.len() { " or " } else { ", " });
        }
        names.push_str(name);
    }
    format!("unknown cmd (expected {names})")
}

/// A successfully parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// A solve request, ready for admission.
    Request(Box<Request>),
    /// A control command.
    Command(Command),
}

/// Error categories the protocol reports to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON or misses/mistypes required fields.
    MalformedRequest,
    /// The instance payload does not describe a valid instance (parse
    /// errors carry OR-Library line numbers).
    InvalidInstance,
    /// The admission queue is at capacity; retry later.
    QueueFull,
    /// The solver rejected the request (e.g. invalid parameters).
    SolverFailed,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// The connection's bounded write buffer overflowed because the
    /// client stopped draining its socket; the connection is shed.
    SlowReader,
    /// A session verb named a session the server does not hold (never
    /// created, already dropped, or LRU-evicted).
    UnknownSession,
}

impl ErrorKind {
    /// The wire name of the category.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::MalformedRequest => "malformed_request",
            ErrorKind::InvalidInstance => "invalid_instance",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::SolverFailed => "solver_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::SlowReader => "slow_reader",
            ErrorKind::UnknownSession => "unknown_session",
        }
    }
}

/// A typed protocol error: category, human detail, and the request id if
/// one was recovered from the line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Category reported as `error.kind`.
    pub kind: ErrorKind,
    /// Human-readable detail reported as `error.detail`.
    pub detail: String,
    /// The request id, when the line was parsed far enough to know it.
    pub id: Option<String>,
}

impl ServeError {
    /// A malformed-request error with no recovered id.
    fn malformed(detail: impl Into<String>) -> Self {
        ServeError { kind: ErrorKind::MalformedRequest, detail: detail.into(), id: None }
    }
}

/// FNV-1a 64-bit hash of `bytes` — the deterministic span id of a
/// request line (no RNG, no clock: restarts reproduce it).
pub fn span_id(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parses one request line into a solve request, session verb, or
/// command.
///
/// # Errors
///
/// Returns a typed [`ServeError`] (always `malformed_request` or
/// `invalid_instance`) carrying the request id when it was recoverable.
pub fn parse_line(line: &str) -> Result<Parsed, ServeError> {
    let value = Json::parse(line)
        .map_err(|e| ServeError::malformed(format!("request is not valid JSON: {e}")))?;
    if let Some(cmd) = value.get("cmd") {
        let verb = cmd
            .as_str()
            .and_then(|name| VERBS.iter().find(|(n, _)| *n == name))
            .map(|&(_, verb)| verb)
            .ok_or_else(|| ServeError::malformed(unknown_cmd_detail()))?;
        if let Verb::Control(command) = verb {
            return Ok(Parsed::Command(command));
        }
        let id = parse_id(&value)?;
        let fail =
            |kind: ErrorKind, detail: String| ServeError { kind, detail, id: Some(id.clone()) };
        let session = match value.get("session") {
            Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_ID_LEN => s.clone(),
            Some(_) => {
                return Err(fail(
                    ErrorKind::MalformedRequest,
                    format!("session must be a string of 1..={MAX_ID_LEN} characters"),
                ))
            }
            None => return Err(fail(ErrorKind::MalformedRequest, "missing field: session".into())),
        };
        let action = match verb {
            Verb::Control(_) => unreachable!("control verbs returned above"),
            Verb::Create => Action::Create { session, source: parse_source(&value, &fail)? },
            Verb::Mutate => Action::Mutate { session, delta: parse_delta(&value, &fail)? },
            Verb::SessionSolve => Action::SessionSolve {
                session,
                solver: parse_solver(&value, &fail)?,
                seed: parse_seed(&value, &fail)?,
            },
            Verb::Drop => Action::Drop { session },
        };
        return Ok(Parsed::Request(Box::new(Request {
            id,
            action,
            span_id: span_id(line.as_bytes()),
        })));
    }

    let id = parse_id(&value)?;
    let fail = |kind: ErrorKind, detail: String| ServeError { kind, detail, id: Some(id.clone()) };
    let action = Action::Solve {
        solver: parse_solver(&value, &fail)?,
        seed: parse_seed(&value, &fail)?,
        source: parse_source(&value, &fail)?,
    };
    Ok(Parsed::Request(Box::new(Request { id, action, span_id: span_id(line.as_bytes()) })))
}

/// Extracts and validates the request id.
fn parse_id(value: &Json) -> Result<String, ServeError> {
    match value.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_ID_LEN => Ok(s.clone()),
        Some(Json::Str(_)) => {
            Err(ServeError::malformed(format!("id must be 1..={MAX_ID_LEN} characters")))
        }
        Some(_) => Err(ServeError::malformed("id must be a string")),
        None => Err(ServeError::malformed("missing field: id")),
    }
}

/// Extracts and parses the `solver` field.
fn parse_solver(
    value: &Json,
    fail: &dyn Fn(ErrorKind, String) -> ServeError,
) -> Result<SolverKind, ServeError> {
    match value.get("solver").and_then(Json::as_str) {
        Some(name) => {
            name.parse::<SolverKind>().map_err(|e| fail(ErrorKind::MalformedRequest, e.to_string()))
        }
        None => Err(fail(ErrorKind::MalformedRequest, "missing field: solver".into())),
    }
}

/// Extracts the optional `seed` field (default 0).
fn parse_seed(
    value: &Json,
    fail: &dyn Fn(ErrorKind, String) -> ServeError,
) -> Result<u64, ServeError> {
    match value.get("seed") {
        None => Ok(0),
        Some(v) => v.as_u64().ok_or_else(|| {
            fail(ErrorKind::MalformedRequest, "seed must be a non-negative integer".into())
        }),
    }
}

/// Extracts the instance payload (`instance` inline or `orlib` text).
fn parse_source(
    value: &Json,
    fail: &dyn Fn(ErrorKind, String) -> ServeError,
) -> Result<InstanceSource, ServeError> {
    match (value.get("instance"), value.get("orlib")) {
        (Some(inline), None) => Ok(InstanceSource::Inline(
            build_inline(inline).map_err(|detail| fail(ErrorKind::InvalidInstance, detail))?,
        )),
        (None, Some(Json::Str(payload))) => Ok(InstanceSource::OrLib(payload.clone())),
        (None, Some(_)) => Err(fail(ErrorKind::MalformedRequest, "orlib must be a string".into())),
        (Some(_), Some(_)) => {
            Err(fail(ErrorKind::MalformedRequest, "give either instance or orlib, not both".into()))
        }
        (None, None) => {
            Err(fail(ErrorKind::MalformedRequest, "missing field: instance or orlib".into()))
        }
    }
}

/// Parses the `delta` object of a `mutate` verb into a [`DeltaSpec`].
fn parse_delta(
    value: &Json,
    fail: &dyn Fn(ErrorKind, String) -> ServeError,
) -> Result<DeltaSpec, ServeError> {
    let delta = value
        .get("delta")
        .ok_or_else(|| fail(ErrorKind::MalformedRequest, "missing field: delta".into()))?;
    let mut spec = DeltaSpec::default();
    if let Some(remove) = delta.get("remove") {
        let items = remove.as_array().ok_or_else(|| {
            fail(ErrorKind::MalformedRequest, "delta.remove must be an array of client ids".into())
        })?;
        for (index, item) in items.iter().enumerate() {
            let j = item.as_u64().filter(|&j| j <= u64::from(u32::MAX)).ok_or_else(|| {
                fail(
                    ErrorKind::MalformedRequest,
                    format!("delta.remove[{index}] is not a client id"),
                )
            })?;
            spec.remove.push(j as u32);
        }
    }
    if let Some(reprice) = delta.get("reprice") {
        let items = reprice.as_array().ok_or_else(|| {
            fail(
                ErrorKind::MalformedRequest,
                "delta.reprice must be an array of [client, facility, cost] triples".into(),
            )
        })?;
        for (index, item) in items.iter().enumerate() {
            let bad = || {
                fail(
                    ErrorKind::MalformedRequest,
                    format!("delta.reprice[{index}] must be a [client, facility, cost] triple"),
                )
            };
            let triple = item.as_array().ok_or_else(bad)?;
            if triple.len() != 3 {
                return Err(bad());
            }
            let j = triple[0].as_u64().filter(|&x| x <= u64::from(u32::MAX)).ok_or_else(bad)?;
            let i = triple[1].as_u64().filter(|&x| x <= u64::from(u32::MAX)).ok_or_else(bad)?;
            let c = triple[2].as_f64().ok_or_else(bad)?;
            spec.reprice.push((j as u32, i as u32, c));
        }
    }
    if let Some(add) = delta.get("add") {
        let rows = add.as_array().ok_or_else(|| {
            fail(
                ErrorKind::MalformedRequest,
                "delta.add must be an array of [facility, cost, ...] pair lists".into(),
            )
        })?;
        for (index, row) in rows.iter().enumerate() {
            let pairs = row.as_array().ok_or_else(|| {
                fail(ErrorKind::MalformedRequest, format!("delta.add[{index}] is not a pair array"))
            })?;
            if pairs.len() % 2 != 0 || pairs.is_empty() {
                return Err(fail(
                    ErrorKind::MalformedRequest,
                    format!("delta.add[{index}] must hold (facility, cost) pairs"),
                ));
            }
            let mut links = Vec::with_capacity(pairs.len() / 2);
            for pair in pairs.chunks(2) {
                let i =
                    pair[0].as_u64().filter(|&x| x <= u64::from(u32::MAX)).ok_or_else(|| {
                        fail(
                            ErrorKind::MalformedRequest,
                            format!("delta.add[{index}]: facility index is not an integer"),
                        )
                    })?;
                let c = pair[1].as_f64().ok_or_else(|| {
                    fail(
                        ErrorKind::MalformedRequest,
                        format!("delta.add[{index}]: cost is not a number"),
                    )
                })?;
                links.push((i as u32, c));
            }
            spec.add.push(links);
        }
    }
    if spec.remove.is_empty() && spec.reprice.is_empty() && spec.add.is_empty() {
        return Err(fail(
            ErrorKind::MalformedRequest,
            "delta must carry at least one of remove, reprice, add".into(),
        ));
    }
    Ok(spec)
}

/// Builds an [`Instance`] from the inline `{"opening", "links"}` shape.
fn build_inline(value: &Json) -> Result<Instance, String> {
    let opening = value
        .get("opening")
        .and_then(Json::as_array)
        .ok_or("instance.opening must be an array of opening costs")?;
    let links = value
        .get("links")
        .and_then(Json::as_array)
        .ok_or("instance.links must be an array (one pair list per client)")?;

    let mut builder = InstanceBuilder::new();
    let mut fids = Vec::with_capacity(opening.len());
    for (index, cost) in opening.iter().enumerate() {
        let cost = cost.as_f64().ok_or_else(|| format!("opening[{index}] is not a number"))?;
        let cost = Cost::new(cost).map_err(|e| format!("opening[{index}]: {e}"))?;
        fids.push(builder.add_facility(cost));
    }
    for (j, pairs) in links.iter().enumerate() {
        let pairs = pairs.as_array().ok_or_else(|| format!("links[{j}] is not a pair array"))?;
        if pairs.len() % 2 != 0 {
            return Err(format!("links[{j}] must hold (facility, cost) pairs"));
        }
        let client = builder.add_client();
        for pair in pairs.chunks(2) {
            let facility = pair[0]
                .as_u64()
                .ok_or_else(|| format!("links[{j}]: facility index is not an integer"))?;
            let facility = usize::try_from(facility).expect("u64 fits usize on 64-bit");
            if facility >= fids.len() {
                return Err(format!(
                    "links[{j}]: facility index {facility} out of range ({} facilities)",
                    fids.len()
                ));
            }
            let cost =
                pair[1].as_f64().ok_or_else(|| format!("links[{j}]: cost is not a number"))?;
            let cost = Cost::new(cost).map_err(|e| format!("links[{j}]: {e}"))?;
            builder
                .link(client, FacilityId::new(facility as u32), cost)
                .map_err(|e| format!("links[{j}]: {e}"))?;
        }
    }
    builder.build().map_err(|e| e.to_string())
}

/// Renders `span_id` the way responses carry it: 16 lowercase hex digits.
pub fn span_hex(span_id: u64) -> String {
    format!("{span_id:016x}")
}

/// Renders a solve success response line (no trailing newline). `solver`
/// and `seed` are passed explicitly because both stateless and session
/// solves report them. `routed` is the concrete kind the classifier
/// picked when the request asked for `auto`; it is **only** emitted for
/// auto requests, so response bytes for every concrete kind are identical
/// to what they were before the portfolio existed.
pub fn render_success(
    request: &Request,
    solver: SolverKind,
    seed: u64,
    routed: Option<SolverKind>,
    cost: f64,
    open: &[usize],
    rounds: Option<u32>,
) -> String {
    let mut w = JsonWriter::object();
    w.key("id").string(&request.id);
    w.key("ok").boolean(true);
    w.key("solver").string(solver.name());
    if let Some(routed) = routed {
        w.key("routed").string(routed.name());
    }
    w.key("seed").number_u64(seed);
    w.key("cost").number(cost);
    w.key("open").begin_array();
    for &i in open {
        w.number_u64(i as u64);
    }
    w.end_array();
    match rounds {
        Some(r) => w.key("rounds").number_u64(u64::from(r)),
        None => w.key("rounds").null(),
    };
    w.key("span").string(&span_hex(request.span_id));
    w.finish()
}

/// Shape of a session's instance, echoed on create/mutate acks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionShape {
    /// Facility count.
    pub facilities: usize,
    /// Client count after the action.
    pub clients: usize,
    /// Link count after the action.
    pub links: usize,
    /// Mutation epoch: 0 at create, +1 per applied delta.
    pub epoch: u64,
}

/// Renders the acknowledgement for a `create` verb.
pub fn render_create_ack(request: &Request, session: &str, shape: SessionShape) -> String {
    let mut w = JsonWriter::object();
    w.key("id").string(&request.id);
    w.key("ok").boolean(true);
    w.key("session").string(session);
    w.key("created").boolean(true);
    write_shape(&mut w, shape);
    w.key("span").string(&span_hex(request.span_id));
    w.finish()
}

/// Renders the acknowledgement for a `mutate` verb. `removed`, `added`,
/// and `repriced` echo the applied delta's shape so a client can confirm
/// what landed.
pub fn render_mutate_ack(
    request: &Request,
    session: &str,
    shape: SessionShape,
    removed: usize,
    added: usize,
    repriced: usize,
) -> String {
    let mut w = JsonWriter::object();
    w.key("id").string(&request.id);
    w.key("ok").boolean(true);
    w.key("session").string(session);
    w.key("removed").number_u64(removed as u64);
    w.key("added").number_u64(added as u64);
    w.key("repriced").number_u64(repriced as u64);
    write_shape(&mut w, shape);
    w.key("span").string(&span_hex(request.span_id));
    w.finish()
}

/// Renders the acknowledgement for a `drop` verb.
pub fn render_drop_ack(request: &Request, session: &str) -> String {
    let mut w = JsonWriter::object();
    w.key("id").string(&request.id);
    w.key("ok").boolean(true);
    w.key("session").string(session);
    w.key("dropped").boolean(true);
    w.key("span").string(&span_hex(request.span_id));
    w.finish()
}

fn write_shape(w: &mut JsonWriter, shape: SessionShape) {
    w.key("facilities").number_u64(shape.facilities as u64);
    w.key("clients").number_u64(shape.clients as u64);
    w.key("links").number_u64(shape.links as u64);
    w.key("epoch").number_u64(shape.epoch);
}

/// Renders a typed error response line (no trailing newline). `span_id`
/// is 0 when the line never parsed far enough to hash meaningfully.
pub fn render_error(error: &ServeError, span_id: u64) -> String {
    let mut w = JsonWriter::object();
    match &error.id {
        Some(id) => w.key("id").string(id),
        None => w.key("id").null(),
    };
    w.key("ok").boolean(false);
    w.key("error").begin_object();
    w.key("kind").string(error.kind.as_str());
    w.key("detail").string(&error.detail);
    w.end_object();
    w.key("span").string(&span_hex(span_id));
    w.finish()
}

/// Renders the acknowledgement for a [`Command`].
pub fn render_command_ack(cmd: Command) -> String {
    let mut w = JsonWriter::object();
    w.key("ok").boolean(true);
    match cmd {
        Command::Ping => w.key("pong").boolean(true),
        Command::Shutdown => w.key("shutdown").boolean(true),
    };
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const INLINE: &str = r#"{"id":"r1","solver":"greedy","seed":3,"instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#;

    #[test]
    fn parses_an_inline_request() {
        let parsed = parse_line(INLINE).unwrap();
        let Parsed::Request(req) = parsed else { panic!("expected a request") };
        assert_eq!(req.id, "r1");
        let Action::Solve { solver, seed, source } = &req.action else { panic!("expected solve") };
        assert_eq!(*solver, SolverKind::Greedy);
        assert_eq!(*seed, 3);
        let InstanceSource::Inline(inst) = source else { panic!("expected inline") };
        assert_eq!(inst.num_facilities(), 2);
        assert_eq!(inst.num_clients(), 2);
        assert_eq!(req.span_id, span_id(INLINE.as_bytes()));
    }

    #[test]
    fn parses_an_orlib_request_lazily() {
        let line = r#"{"id":"x","solver":"jv","orlib":"2 1\n0 4\n0 3\n0\n1 2\n"}"#;
        let Parsed::Request(req) = parse_line(line).unwrap() else { panic!() };
        let Action::Solve { seed, source, .. } = &req.action else { panic!("expected solve") };
        assert!(matches!(source, InstanceSource::OrLib(_)));
        assert_eq!(*seed, 0, "seed defaults to 0");
    }

    #[test]
    fn commands_parse() {
        assert_eq!(parse_line(r#"{"cmd":"ping"}"#).unwrap(), Parsed::Command(Command::Ping));
        assert_eq!(
            parse_line(r#"{"cmd":"shutdown"}"#).unwrap(),
            Parsed::Command(Command::Shutdown)
        );
        assert!(parse_line(r#"{"cmd":"reboot"}"#).is_err());
    }

    #[test]
    fn unknown_cmd_error_derives_from_the_registry() {
        // The message lists every registered verb, straight from COMMANDS,
        // so it cannot drift as verbs land.
        let err = parse_line(r#"{"cmd":"reboot"}"#).unwrap_err();
        assert_eq!(err.detail, unknown_cmd_detail());
        for name in COMMANDS {
            assert!(err.detail.contains(name), "{} missing from: {}", name, err.detail);
        }
        assert_eq!(
            unknown_cmd_detail(),
            "unknown cmd (expected ping, shutdown, create, mutate, solve or drop)"
        );
        // Every registered verb is recognized: parsing may fail on missing
        // fields, but never with the unknown-cmd message.
        for name in COMMANDS {
            let line = format!(r#"{{"cmd":"{name}"}}"#);
            if let Err(err) = parse_line(&line) {
                assert_ne!(err.detail, unknown_cmd_detail(), "cmd {name} reported as unknown");
            }
        }
    }

    #[test]
    fn session_verbs_parse() {
        let line = r#"{"cmd":"create","id":"c1","session":"s1","instance":{"opening":[4.0],"links":[[0,1.0]]}}"#;
        let Parsed::Request(req) = parse_line(line).unwrap() else { panic!() };
        assert_eq!(req.action.session(), Some("s1"));
        assert!(matches!(req.action, Action::Create { .. }));

        let line = r#"{"cmd":"mutate","id":"m1","session":"s1","delta":{"remove":[1],"reprice":[[0,0,1.5]],"add":[[1,0.25,0,2.0]]}}"#;
        let Parsed::Request(req) = parse_line(line).unwrap() else { panic!() };
        let Action::Mutate { session, delta } = &req.action else { panic!("expected mutate") };
        assert_eq!(session, "s1");
        assert_eq!(delta.remove, vec![1]);
        assert_eq!(delta.reprice, vec![(0, 0, 1.5)]);
        assert_eq!(delta.add, vec![vec![(1, 0.25), (0, 2.0)]]);

        let line = r#"{"cmd":"solve","id":"q1","session":"s1","solver":"jv","seed":9}"#;
        let Parsed::Request(req) = parse_line(line).unwrap() else { panic!() };
        let Action::SessionSolve { session, solver, seed } = &req.action else { panic!() };
        assert_eq!((session.as_str(), *solver, *seed), ("s1", SolverKind::JainVazirani, 9));

        let line = r#"{"cmd":"drop","id":"d1","session":"s1"}"#;
        let Parsed::Request(req) = parse_line(line).unwrap() else { panic!() };
        assert_eq!(req.action, Action::Drop { session: "s1".into() });
    }

    #[test]
    fn session_verbs_validate_their_fields() {
        let err = parse_line(r#"{"cmd":"mutate","id":"m1","delta":{"remove":[0]}}"#).unwrap_err();
        assert!(err.detail.contains("session"), "{}", err.detail);
        assert_eq!(err.id.as_deref(), Some("m1"));

        let err = parse_line(r#"{"cmd":"mutate","id":"m2","session":"s","delta":{}}"#).unwrap_err();
        assert!(err.detail.contains("at least one"), "{}", err.detail);

        let err =
            parse_line(r#"{"cmd":"mutate","id":"m3","session":"s","delta":{"reprice":[[0,0]]}}"#)
                .unwrap_err();
        assert!(err.detail.contains("triple"), "{}", err.detail);

        let err = parse_line(r#"{"cmd":"mutate","id":"m4","session":"s","delta":{"add":[[0]]}}"#)
            .unwrap_err();
        assert!(err.detail.contains("pairs"), "{}", err.detail);

        let err = parse_line(r#"{"cmd":"solve","id":"q","session":"s"}"#).unwrap_err();
        assert!(err.detail.contains("solver"), "{}", err.detail);
    }

    #[test]
    fn malformed_lines_keep_the_id_when_recoverable() {
        let err = parse_line(r#"{"id":"r9","solver":"simplex","orlib":"x"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::MalformedRequest);
        assert_eq!(err.id.as_deref(), Some("r9"));
        let err = parse_line("not json").unwrap_err();
        assert_eq!(err.kind, ErrorKind::MalformedRequest);
        assert_eq!(err.id, None);
    }

    #[test]
    fn inline_validation_is_typed_invalid_instance() {
        let line =
            r#"{"id":"r2","solver":"greedy","instance":{"opening":[1.0],"links":[[5,1.0]]}}"#;
        let err = parse_line(line).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidInstance);
        assert!(err.detail.contains("out of range"), "{}", err.detail);
    }

    #[test]
    fn responses_are_wellformed_json() {
        let Parsed::Request(req) = parse_line(INLINE).unwrap() else { panic!() };
        let ok = render_success(&req, SolverKind::Greedy, 3, None, 5.5, &[0, 2], Some(17));
        distfl_obs::validate_json(&ok).unwrap();
        assert!(ok.contains("\"rounds\":17"), "{ok}");
        assert!(!ok.contains("routed"), "concrete kinds must not emit routed: {ok}");
        let auto = render_success(
            &req,
            SolverKind::Auto,
            3,
            Some(SolverKind::MetricBall),
            5.5,
            &[0],
            Some(9),
        );
        distfl_obs::validate_json(&auto).unwrap();
        assert!(
            auto.contains("\"solver\":\"auto\"") && auto.contains("\"routed\":\"metricball\""),
            "{auto}"
        );
        let shape = SessionShape { facilities: 2, clients: 3, links: 5, epoch: 1 };
        let ack = render_create_ack(&req, "s1", shape);
        distfl_obs::validate_json(&ack).unwrap();
        assert!(ack.contains("\"created\":true"), "{ack}");
        let ack = render_mutate_ack(&req, "s1", shape, 1, 2, 0);
        distfl_obs::validate_json(&ack).unwrap();
        assert!(ack.contains("\"epoch\":1") && ack.contains("\"added\":2"), "{ack}");
        let ack = render_drop_ack(&req, "s1");
        distfl_obs::validate_json(&ack).unwrap();
        assert!(ack.contains("\"dropped\":true"), "{ack}");
        let err = render_error(
            &ServeError { kind: ErrorKind::QueueFull, detail: "full".into(), id: Some("a".into()) },
            7,
        );
        distfl_obs::validate_json(&err).unwrap();
        assert!(err.contains("\"kind\":\"queue_full\""), "{err}");
        assert!(err.contains("\"span\":\"0000000000000007\""), "{err}");
        distfl_obs::validate_json(&render_command_ack(Command::Ping)).unwrap();
    }

    #[test]
    fn span_ids_are_stable() {
        // FNV-1a is part of the wire contract (byte-deterministic
        // responses across restarts); pin a reference value.
        assert_eq!(span_id(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(span_id(INLINE.as_bytes()), span_id(INLINE.as_bytes()));
    }
}
