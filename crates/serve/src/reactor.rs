//! Readiness-driven I/O: a minimal reactor over `epoll` (Linux),
//! `poll(2)` (other Unix), or a timed sweep (everywhere else).
//!
//! The workspace carries no external dependencies, so the two kernel
//! backends declare the handful of syscalls they need directly (the
//! crate-wide `unsafe` exception lives in the private `sys` module);
//! everything above the
//! syscall boundary is safe Rust. The reactor is deliberately small:
//! level-triggered readiness, `u64` tokens chosen by the caller, and a
//! cross-thread [`Waker`] — enough for one event-loop thread to own
//! thousands of nonblocking sockets.
//!
//! Backend choice is [`ReactorKind::Auto`] unless overridden (the
//! `--reactor` flag on `distfl-serve`); the sweep backend trades
//! efficiency for portability by reporting every registered token as
//! possibly-ready on a short tick, which is semantically sound for
//! level-triggered consumers of nonblocking sockets.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which readiness backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorKind {
    /// Best available: `epoll` on Linux, `poll` on other Unix, sweep
    /// elsewhere.
    Auto,
    /// Linux `epoll` (fails at construction off Linux).
    Epoll,
    /// POSIX `poll(2)` (fails at construction off Unix).
    Poll,
    /// Portable timed sweep: every registered token reports ready on a
    /// short tick. Correct (level-triggered consumers retry on
    /// `WouldBlock`) but burns a tick even when idle.
    Sweep,
}

impl std::str::FromStr for ReactorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ReactorKind::Auto),
            "epoll" => Ok(ReactorKind::Epoll),
            "poll" => Ok(ReactorKind::Poll),
            "sweep" => Ok(ReactorKind::Sweep),
            other => Err(format!("unknown reactor {other:?} (expected auto|epoll|poll|sweep)")),
        }
    }
}

impl ReactorKind {
    /// The backend `Auto` resolves to on this platform.
    pub fn resolved(self) -> ReactorKind {
        match self {
            ReactorKind::Auto => {
                if cfg!(target_os = "linux") {
                    ReactorKind::Epoll
                } else if cfg!(unix) {
                    ReactorKind::Poll
                } else {
                    ReactorKind::Sweep
                }
            }
            other => other,
        }
    }

    /// The backend's name (for logs and bench documents).
    pub fn name(self) -> &'static str {
        match self {
            ReactorKind::Auto => "auto",
            ReactorKind::Epoll => "epoll",
            ReactorKind::Poll => "poll",
            ReactorKind::Sweep => "sweep",
        }
    }
}

/// What a waited-on token is ready for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// Readable (or peer-closed / errored — a subsequent read reports it).
    pub readable: bool,
    /// Writable (or errored — a subsequent write reports it).
    pub writable: bool,
}

/// Readiness interest for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { read: true, write: true };
}

/// The token the reactor reserves for its own [`Waker`].
pub const WAKE_TOKEN: u64 = u64::MAX;

/// A raw I/O source id. On Unix this is the file descriptor; on other
/// platforms (sweep backend only) it is an opaque caller-chosen id.
#[cfg(unix)]
pub type SourceId = std::os::unix::io::RawFd;
/// A raw I/O source id (opaque off Unix; the sweep backend never
/// dereferences it).
#[cfg(not(unix))]
pub type SourceId = i32;

/// The raw source id of a socket, usable with [`Poller::register`].
#[cfg(unix)]
pub fn source_id<T: std::os::unix::io::AsRawFd>(io: &T) -> SourceId {
    io.as_raw_fd()
}

#[cfg(not(unix))]
static NEXT_SOURCE: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(1);

/// A unique opaque id (off Unix the kernel id is unavailable through a
/// portable API; the sweep backend only needs distinctness).
#[cfg(not(unix))]
pub fn source_id<T>(_io: &T) -> SourceId {
    NEXT_SOURCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Cross-thread wakeup handle for a [`Poller`]; cheap to clone.
#[derive(Clone)]
pub struct Waker {
    inner: WakerInner,
}

#[derive(Clone)]
enum WakerInner {
    #[cfg(unix)]
    Pipe(Arc<std::os::unix::net::UnixStream>),
    Flag(Arc<SweepShared>),
}

impl Waker {
    /// Makes the poller's current (or next) [`Poller::wait`] return with a
    /// [`WAKE_TOKEN`] event. Idempotent between waits.
    pub fn wake(&self) {
        match &self.inner {
            #[cfg(unix)]
            WakerInner::Pipe(tx) => {
                use std::io::Write;
                // A full pipe already guarantees a pending wakeup.
                let _ = (&**tx).write(&[1]);
            }
            WakerInner::Flag(shared) => {
                shared.woken.store(true, Ordering::SeqCst);
                let guard = shared.tick.0.lock().unwrap_or_else(|e| e.into_inner());
                shared.tick.1.notify_all();
                drop(guard);
            }
        }
    }
}

/// State shared between the sweep backend and its wakers.
struct SweepShared {
    woken: AtomicBool,
    tick: (Mutex<()>, Condvar),
}

/// A readiness poller: register sources, wait for events.
pub struct Poller {
    backend: Backend,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    #[cfg(unix)]
    Poll(poll::Poll),
    Sweep(sweep::Sweep),
}

impl Poller {
    /// Opens a poller with the requested backend ([`ReactorKind::Auto`]
    /// picks the best available).
    ///
    /// # Errors
    ///
    /// Fails when the backend is unavailable on this platform or the
    /// kernel refuses the underlying handle.
    pub fn new(kind: ReactorKind) -> io::Result<Poller> {
        let backend = match kind.resolved() {
            #[cfg(target_os = "linux")]
            ReactorKind::Epoll => Backend::Epoll(epoll::Epoll::new()?),
            #[cfg(unix)]
            ReactorKind::Poll => Backend::Poll(poll::Poll::new()?),
            ReactorKind::Sweep => Backend::Sweep(sweep::Sweep::new()),
            #[allow(unreachable_patterns)]
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("reactor backend {} unavailable on this platform", other.name()),
                ))
            }
        };
        Ok(Poller { backend })
    }

    /// The backend actually in use.
    pub fn kind(&self) -> ReactorKind {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => ReactorKind::Epoll,
            #[cfg(unix)]
            Backend::Poll(_) => ReactorKind::Poll,
            Backend::Sweep(_) => ReactorKind::Sweep,
        }
    }

    /// A cloneable cross-thread wakeup handle.
    pub fn waker(&self) -> Waker {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.waker(),
            #[cfg(unix)]
            Backend::Poll(b) => b.waker(),
            Backend::Sweep(b) => b.waker(),
        }
    }

    /// Starts watching `source` under `token` with `interest`.
    ///
    /// # Errors
    ///
    /// Propagates kernel registration failures.
    pub fn register(&mut self, source: SourceId, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.register(source, token, interest),
            #[cfg(unix)]
            Backend::Poll(b) => b.register(source, token, interest),
            Backend::Sweep(b) => b.register(token),
        }
    }

    /// Changes the interest set of a registered source.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures (e.g. the source is not registered).
    pub fn set_interest(
        &mut self,
        source: SourceId,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.set_interest(source, token, interest),
            #[cfg(unix)]
            Backend::Poll(b) => b.set_interest(token, interest),
            Backend::Sweep(_) => Ok(()),
        }
    }

    /// Stops watching a source. Must be called before the source closes.
    pub fn deregister(&mut self, source: SourceId, token: u64) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.deregister(source),
            #[cfg(unix)]
            Backend::Poll(b) => b.deregister(token),
            Backend::Sweep(b) => b.deregister(token),
        }
    }

    /// Blocks until at least one registered source is ready (or `timeout`
    /// elapses, or a [`Waker`] fires), filling `events`. A waker fire
    /// surfaces as a readable [`WAKE_TOKEN`] event.
    ///
    /// # Errors
    ///
    /// Propagates kernel wait failures (`EINTR` is retried internally).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.wait(events, timeout),
            #[cfg(unix)]
            Backend::Poll(b) => b.wait(events, timeout),
            Backend::Sweep(b) => b.wait(events, timeout),
        }
    }
}

/// The syscall boundary: the only unsafe code in the crate. Each
/// declaration mirrors the POSIX/Linux prototype; no pointers outlive the
/// call they are passed to.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::io;

    /// One `poll(2)` / `ppoll` entry, layout per POSIX.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks in `poll(2)`; `timeout_ms < 0` waits indefinitely.
    pub fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice for the
            // duration of the call; the kernel writes only `revents`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Clamps a socket's kernel send buffer (`SO_SNDBUF`). Best-effort
    /// off Linux (constant values differ; we only tune on Linux).
    pub fn set_send_buffer(fd: i32, bytes: usize) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            const SOL_SOCKET: i32 = 1;
            const SO_SNDBUF: i32 = 7;
            extern "C" {
                fn setsockopt(
                    fd: i32,
                    level: i32,
                    name: i32,
                    value: *const core::ffi::c_void,
                    len: u32,
                ) -> i32;
            }
            let value = bytes.min(i32::MAX as usize) as i32;
            // SAFETY: passes a pointer to a live i32 with its exact size.
            let rc = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    SO_SNDBUF,
                    (&value as *const i32).cast(),
                    std::mem::size_of::<i32>() as u32,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = (fd, bytes);
        Ok(())
    }

    #[cfg(target_os = "linux")]
    pub mod linux {
        use std::io;

        /// Linux `epoll_event`. x86 packs it to 12 bytes; other ABIs use
        /// natural alignment.
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        const EPOLL_CLOEXEC: i32 = 0x80000;

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        /// Creates an epoll instance (close-on-exec).
        pub fn create() -> io::Result<i32> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(fd)
        }

        /// `epoll_ctl` with an event payload (ADD/MOD).
        pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: `ev` is a live stack value for the call's duration.
            let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// `epoll_ctl(EPOLL_CTL_DEL)`; the event pointer is ignored on
        /// kernels ≥ 2.6.9.
        pub fn ctl_del(epfd: i32, fd: i32) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as above; DEL ignores the payload.
            let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks in `epoll_wait`; `timeout_ms < 0` waits indefinitely.
        pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // SAFETY: `buf` is a valid exclusively borrowed slice; the
                // kernel fills at most `buf.len()` entries.
                let rc =
                    unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }

        /// Closes the epoll fd.
        pub fn close_fd(fd: i32) {
            // SAFETY: fd was returned by epoll_create1 and closed once.
            let _ = unsafe { close(fd) };
        }
    }
}

/// Clamps a socket's kernel send buffer (Unix; no-op elsewhere). A
/// serving-side tuning knob: smaller kernel buffers bound per-connection
/// kernel memory and surface backpressure to the user-space write buffer
/// sooner.
pub fn set_send_buffer_size(source: SourceId, bytes: usize) -> io::Result<()> {
    #[cfg(unix)]
    return sys::set_send_buffer(source, bytes);
    #[cfg(not(unix))]
    {
        let _ = (source, bytes);
        Ok(())
    }
}

#[cfg(unix)]
fn wake_pair() -> io::Result<(std::os::unix::net::UnixStream, std::os::unix::net::UnixStream)> {
    let (rx, tx) = std::os::unix::net::UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((rx, tx))
}

/// Drains a nonblocking wake stream so level-triggered polling settles.
#[cfg(unix)]
fn drain_wake(rx: &std::os::unix::net::UnixStream) {
    use std::io::Read;
    let mut sink = [0u8; 64];
    while let Ok(n) = (&*rx).read(&mut sink) {
        if n < sink.len() {
            break;
        }
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::sys::linux as ep;
    use super::*;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    pub struct Epoll {
        epfd: i32,
        wake_rx: UnixStream,
        wake_tx: Arc<UnixStream>,
        buf: Vec<ep::EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= ep::EPOLLIN;
        }
        if interest.write {
            m |= ep::EPOLLOUT;
        }
        m
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = ep::create()?;
            let (wake_rx, wake_tx) = match wake_pair() {
                Ok(pair) => pair,
                Err(e) => {
                    ep::close_fd(epfd);
                    return Err(e);
                }
            };
            if let Err(e) =
                ep::ctl(epfd, ep::EPOLL_CTL_ADD, wake_rx.as_raw_fd(), ep::EPOLLIN, WAKE_TOKEN)
            {
                ep::close_fd(epfd);
                return Err(e);
            }
            Ok(Epoll {
                epfd,
                wake_rx,
                wake_tx: Arc::new(wake_tx),
                buf: vec![ep::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn waker(&self) -> Waker {
            Waker { inner: WakerInner::Pipe(Arc::clone(&self.wake_tx)) }
        }

        pub fn register(&mut self, fd: SourceId, token: u64, interest: Interest) -> io::Result<()> {
            ep::ctl(self.epfd, ep::EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        pub fn set_interest(
            &mut self,
            fd: SourceId,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            ep::ctl(self.epfd, ep::EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        pub fn deregister(&mut self, fd: SourceId) {
            let _ = ep::ctl_del(self.epfd, fd);
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = ep::wait(self.epfd, &mut self.buf, timeout_ms(timeout))?;
            for raw in &self.buf[..n] {
                let (bits, token) = (raw.events, raw.data);
                if token == WAKE_TOKEN {
                    drain_wake(&self.wake_rx);
                    events.push(Event { token, readable: true, writable: false });
                    continue;
                }
                // Errors/hangups surface as both-ready so the owner's next
                // read/write observes and reports the failure.
                let broken = bits & (ep::EPOLLERR | ep::EPOLLHUP) != 0;
                events.push(Event {
                    token,
                    readable: broken || bits & ep::EPOLLIN != 0,
                    writable: broken || bits & ep::EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            ep::close_fd(self.epfd);
        }
    }
}

#[cfg(unix)]
mod poll {
    use super::sys::{sys_poll, PollFd, POLLIN, POLLOUT};
    use super::*;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    pub struct Poll {
        wake_rx: UnixStream,
        wake_tx: Arc<UnixStream>,
        sources: BTreeMap<u64, (SourceId, Interest)>,
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Poll {
        pub fn new() -> io::Result<Poll> {
            let (wake_rx, wake_tx) = wake_pair()?;
            Ok(Poll {
                wake_rx,
                wake_tx: Arc::new(wake_tx),
                sources: BTreeMap::new(),
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        pub fn waker(&self) -> Waker {
            Waker { inner: WakerInner::Pipe(Arc::clone(&self.wake_tx)) }
        }

        pub fn register(&mut self, fd: SourceId, token: u64, interest: Interest) -> io::Result<()> {
            self.sources.insert(token, (fd, interest));
            Ok(())
        }

        pub fn set_interest(&mut self, token: u64, interest: Interest) -> io::Result<()> {
            match self.sources.get_mut(&token) {
                Some(entry) => {
                    entry.1 = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "token not registered")),
            }
        }

        pub fn deregister(&mut self, token: u64) {
            self.sources.remove(&token);
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            self.fds.clear();
            self.tokens.clear();
            self.fds.push(PollFd { fd: self.wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
            self.tokens.push(WAKE_TOKEN);
            for (&token, &(fd, interest)) in &self.sources {
                let mut mask = 0;
                if interest.read {
                    mask |= POLLIN;
                }
                if interest.write {
                    mask |= POLLOUT;
                }
                self.fds.push(PollFd { fd, events: mask, revents: 0 });
                self.tokens.push(token);
            }
            let n = sys_poll(&mut self.fds, timeout_ms(timeout))?;
            if n == 0 {
                return Ok(());
            }
            for (entry, &token) in self.fds.iter().zip(&self.tokens) {
                if entry.revents == 0 {
                    continue;
                }
                if token == WAKE_TOKEN {
                    drain_wake(&self.wake_rx);
                    events.push(Event { token, readable: true, writable: false });
                    continue;
                }
                // POLLERR/POLLHUP/POLLNVAL are any bits beyond IN/OUT.
                let broken = entry.revents & !(POLLIN | POLLOUT) != 0;
                events.push(Event {
                    token,
                    readable: broken || entry.revents & POLLIN != 0,
                    writable: broken || entry.revents & POLLOUT != 0,
                });
            }
            Ok(())
        }
    }
}

mod sweep {
    use super::*;

    /// Tick period: the latency floor of the fallback backend.
    const TICK: Duration = Duration::from_millis(1);

    pub struct Sweep {
        shared: Arc<SweepShared>,
        tokens: Vec<u64>,
    }

    impl Sweep {
        pub fn new() -> Sweep {
            Sweep {
                shared: Arc::new(SweepShared {
                    woken: AtomicBool::new(false),
                    tick: (Mutex::new(()), Condvar::new()),
                }),
                tokens: Vec::new(),
            }
        }

        pub fn waker(&self) -> Waker {
            Waker { inner: WakerInner::Flag(Arc::clone(&self.shared)) }
        }

        pub fn register(&mut self, token: u64) -> io::Result<()> {
            self.tokens.push(token);
            Ok(())
        }

        pub fn deregister(&mut self, token: u64) {
            self.tokens.retain(|&t| t != token);
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let nap = timeout.unwrap_or(TICK).min(TICK);
            if !self.shared.woken.swap(false, Ordering::SeqCst) {
                let guard = self.shared.tick.0.lock().unwrap_or_else(|e| e.into_inner());
                let guard = self
                    .shared
                    .tick
                    .1
                    .wait_timeout(guard, nap)
                    .map(|(g, _)| g)
                    .unwrap_or_else(|e| e.into_inner().0);
                drop(guard);
            }
            if self.shared.woken.swap(false, Ordering::SeqCst) {
                events.push(Event { token: WAKE_TOKEN, readable: true, writable: false });
            }
            for &token in &self.tokens {
                events.push(Event { token, readable: true, writable: true });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn roundtrip_on(kind: ReactorKind) {
        let mut poller = Poller::new(kind).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(source_id(&listener), 1, Interest::READ).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        // Accept becomes readable.
        let accepted = loop {
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break listener.accept().unwrap().0;
            }
        };
        accepted.set_nonblocking(true).unwrap();
        poller.register(source_id(&accepted), 2, Interest::BOTH).unwrap();

        client.write_all(b"hi").unwrap();
        let mut got = Vec::new();
        while got.len() < 2 {
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            for event in events.iter().filter(|e| e.token == 2 && e.readable) {
                let _ = event;
                let mut buf = [0u8; 16];
                match (&accepted).read(&mut buf) {
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read: {e}"),
                }
            }
        }
        assert_eq!(got, b"hi");
        poller.deregister(source_id(&accepted), 2);
        poller.deregister(source_id(&listener), 1);
    }

    #[test]
    fn accept_and_read_via_default_backend() {
        roundtrip_on(ReactorKind::Auto);
    }

    #[cfg(unix)]
    #[test]
    fn accept_and_read_via_poll_backend() {
        roundtrip_on(ReactorKind::Poll);
    }

    #[test]
    fn accept_and_read_via_sweep_backend() {
        roundtrip_on(ReactorKind::Sweep);
    }

    #[test]
    fn waker_interrupts_an_indefinite_wait() {
        for kind in [ReactorKind::Auto, ReactorKind::Sweep] {
            let mut poller = Poller::new(kind).unwrap();
            let waker = poller.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
            });
            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                poller.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
                if events.iter().any(|e| e.token == WAKE_TOKEN) {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "waker never fired ({kind:?})");
            }
            handle.join().unwrap();
        }
    }
}
