//! The per-shard batching scheduler: drains one shard's admission queue
//! in batches and fans each batch out over the shared worker pool.
//!
//! One scheduler thread per shard. Each blocks on its own queue, takes up
//! to `max_batch` requests at once, and executes the whole batch with
//! [`WorkerPool::map_indexed`] — so concurrent requests from independent
//! connections share one fork/join instead of fighting for threads. The
//! rendered responses go back to the reactor through the batch sink
//! (which appends them to per-connection write buffers and wakes the
//! event loop). Batch membership, shard assignment, and reactor timing
//! never leak into response bytes: [`execute`] is a pure function of the
//! request, which is what keeps responses byte-deterministic regardless
//! of batching, worker count, and shard count.

use std::sync::Arc;

use distfl_instance::Instance;
use distfl_pool::WorkerPool;

use crate::proto::{self, ErrorKind, InstanceSource, Request, ServeError};
use crate::queue::Admission;

/// One admitted request together with the way back to its client.
#[derive(Debug)]
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// Token of the connection that sent it (opaque to the scheduler;
    /// the reactor resolves it back to a live connection, if any).
    pub conn: u64,
}

/// Where a shard delivers its rendered batches: a callback that hands
/// `(connection token, response line)` pairs — in admission order — back
/// to the reactor and wakes it.
pub type BatchSink = dyn Fn(Vec<(u64, String)>) + Send + Sync;

/// Obs handles for the scheduler-side metrics.
struct Metrics {
    batches: distfl_obs::Counter,
    batch_size: distfl_obs::Gauge,
    queue_depth: distfl_obs::Gauge,
}

/// Runs one shard's scheduler loop until its queue is closed and drained,
/// executing up to `max_batch` requests per fork/join.
///
/// `batch_hook`, when present, observes each popped batch's size before
/// it executes (see [`crate::ServeConfig::batch_hook`]).
///
/// Every popped job is answered exactly once through `sink` — the drain
/// contract the server's graceful shutdown relies on.
pub fn run_shard(
    queue: &Admission<Job>,
    pool: &Arc<WorkerPool>,
    max_batch: usize,
    batch_hook: Option<&(dyn Fn(usize) + Send + Sync)>,
    sink: &BatchSink,
) {
    let metrics = Metrics {
        batches: distfl_obs::counter("serve.batches"),
        batch_size: distfl_obs::gauge("serve.batch_size"),
        queue_depth: distfl_obs::gauge("serve.queue_depth"),
    };
    loop {
        let batch = queue.pop_batch(max_batch);
        if batch.is_empty() {
            return;
        }
        metrics.batches.incr();
        metrics.batch_size.set(batch.len() as f64);
        metrics.queue_depth.set(queue.depth() as f64);
        if let Some(hook) = batch_hook {
            hook(batch.len());
        }
        let responses = pool.map_indexed(batch.len(), |index| execute(&batch[index].request));
        sink(batch.iter().zip(responses).map(|(job, response)| (job.conn, response)).collect());
    }
}

/// Executes one request on a worker: build the instance, dispatch the
/// solver, render the response line. Pure in the request — two calls with
/// the same request bytes render identical responses, on any thread, in
/// any batch, on any shard.
pub fn execute(request: &Request) -> String {
    let _span = distfl_obs::span_arg("serve", "request", request.span_id);
    let fail = |kind: ErrorKind, detail: String| {
        let error = ServeError { kind, detail, id: Some(request.id.clone()) };
        proto::render_error(&error, request.span_id)
    };
    let instance: Instance = match &request.source {
        InstanceSource::Inline(instance) => instance.clone(),
        InstanceSource::OrLib(payload) => match distfl_instance::orlib::from_str(payload) {
            Ok(instance) => instance,
            Err(e) => return fail(ErrorKind::InvalidInstance, e.to_string()),
        },
    };
    match request.solver.solve(&instance, request.seed) {
        Ok(outcome) => {
            let cost = outcome.solution.cost(&instance).value();
            let open: Vec<usize> = outcome.solution.open_facilities().map(|i| i.index()).collect();
            let rounds =
                outcome.transcript.as_ref().map(|t| t.num_rounds()).or(outcome.modeled_rounds);
            proto::render_success(request, cost, &open, rounds)
        }
        Err(e) => fail(ErrorKind::SolverFailed, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_line, Parsed};
    use std::sync::Mutex;

    fn request(line: &str) -> Request {
        match parse_line(line).unwrap() {
            Parsed::Request(req) => *req,
            other => panic!("expected request, got {other:?}"),
        }
    }

    type Collected = Arc<Mutex<Vec<(u64, String)>>>;

    /// A sink collecting every delivered (conn, response) pair in order.
    fn collecting_sink() -> (Collected, Box<BatchSink>) {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let collected = Arc::clone(&collected);
            Box::new(move |batch: Vec<(u64, String)>| {
                collected.lock().unwrap().extend(batch);
            })
        };
        (collected, sink)
    }

    #[test]
    fn execute_is_deterministic_across_pool_sizes() {
        let line = r#"{"id":"d","solver":"paydual","seed":9,"orlib":"2 3\n0 4\n0 6\n0\n1 5\n0\n2 2\n0\n9 1\n"}"#;
        let req = request(line);
        let direct = execute(&req);
        distfl_obs::validate_json(&direct).unwrap();
        for workers in [0, 2] {
            let pool = Arc::new(WorkerPool::new(workers));
            let queue = Admission::new(8);
            for _ in 0..3 {
                queue.push(Job { request: req.clone(), conn: 1 }).unwrap();
            }
            queue.close();
            let (collected, sink) = collecting_sink();
            run_shard(&queue, &pool, 4, None, &*sink);
            let responses = collected.lock().unwrap();
            assert_eq!(responses.len(), 3);
            for (_, r) in responses.iter() {
                assert_eq!(r, &direct, "workers={workers}");
            }
        }
    }

    #[test]
    fn orlib_parse_failures_surface_line_numbers() {
        let req = request(r#"{"id":"bad","solver":"greedy","orlib":"1 1\n0 x\n0\n1\n"}"#);
        let response = execute(&req);
        distfl_obs::validate_json(&response).unwrap();
        assert!(response.contains("\"kind\":\"invalid_instance\""), "{response}");
        assert!(response.contains("line 2"), "{response}");
    }

    #[test]
    fn run_shard_answers_every_job_in_admission_order() {
        let pool = Arc::new(WorkerPool::new(2));
        let queue = Admission::new(64);
        for i in 0..40u64 {
            let line = format!(
                r#"{{"id":"n{i}","solver":"greedy","instance":{{"opening":[1.0],"links":[[0,1.0]]}}}}"#
            );
            queue.push(Job { request: request(&line), conn: i }).unwrap();
        }
        queue.close();
        let (collected, sink) = collecting_sink();
        run_shard(&queue, &pool, 16, None, &*sink);
        let responses = collected.lock().unwrap();
        assert_eq!(responses.len(), 40, "every admitted job answered");
        let conns: Vec<u64> = responses.iter().map(|(c, _)| *c).collect();
        assert_eq!(conns, (0..40).collect::<Vec<u64>>(), "admission order preserved");
    }
}
