//! The per-shard batching scheduler: drains one shard's admission queue
//! in batches and fans each batch out over the shared worker pool.
//!
//! One scheduler thread per shard. Each blocks on its own queue, takes up
//! to `max_batch` requests at once, partitions the batch into **units** —
//! every stateless solve is its own unit; all requests naming the same
//! session form one unit, kept in admission order — and executes the
//! units with [`WorkerPool::map_indexed`], so concurrent requests from
//! independent connections share one fork/join while a connection's
//! create → mutate → solve pipeline still runs serially against its
//! session. The rendered responses are scattered back to admission order
//! and go to the reactor through the batch sink (which appends them to
//! per-connection write buffers and wakes the event loop).
//!
//! Batch membership, shard assignment, and reactor timing never leak into
//! response bytes: [`execute`] is a pure function of the request and (for
//! session verbs) the session's request history, which is what keeps
//! responses byte-deterministic regardless of batching, worker count, and
//! shard count. Same-session requests arriving on *different*
//! connections have no defined relative order (last-write-wins on the
//! slab), exactly like two clients mutating one resource over any
//! protocol.

use std::sync::Arc;

use distfl_instance::{ClientId, Cost, DeltaBatch, FacilityId, Instance};
use distfl_pool::WorkerPool;

use crate::proto::{
    self, Action, DeltaSpec, ErrorKind, InstanceSource, Request, ServeError, SessionShape,
};
use crate::queue::Admission;
use crate::session::{SessionCache, SessionState};

/// One admitted request together with the way back to its client.
#[derive(Debug)]
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// Token of the connection that sent it (opaque to the scheduler;
    /// the reactor resolves it back to a live connection, if any).
    pub conn: u64,
}

/// Where a shard delivers its rendered batches: a callback that hands
/// `(connection token, response line)` pairs — in admission order — back
/// to the reactor and wakes it.
pub type BatchSink = dyn Fn(Vec<(u64, String)>) + Send + Sync;

/// Obs handles for the scheduler-side metrics.
struct Metrics {
    batches: distfl_obs::Counter,
    batch_size: distfl_obs::Gauge,
    queue_depth: distfl_obs::Gauge,
}

/// Splits a batch into execution units: stateless solves are singleton
/// units; same-session requests collapse into one unit in admission
/// order. Unit order follows each unit's first member, so the partition
/// is a pure function of the batch.
fn partition(batch: &[Job]) -> Vec<Vec<usize>> {
    let mut units: Vec<Vec<usize>> = Vec::with_capacity(batch.len());
    let mut session_unit: Vec<(String, usize)> = Vec::new();
    for (index, job) in batch.iter().enumerate() {
        match job.request.action.session() {
            None => units.push(vec![index]),
            Some(name) => match session_unit.iter().find(|(n, _)| n == name) {
                Some(&(_, unit)) => units[unit].push(index),
                None => {
                    session_unit.push((name.to_owned(), units.len()));
                    units.push(vec![index]);
                }
            },
        }
    }
    units
}

/// Runs one shard's scheduler loop until its queue is closed and drained,
/// executing up to `max_batch` requests per fork/join.
///
/// `batch_hook`, when present, observes each popped batch's size before
/// it executes (see [`crate::ServeConfig::batch_hook`]).
///
/// Every popped job is answered exactly once through `sink` — the drain
/// contract the server's graceful shutdown relies on.
pub fn run_shard(
    queue: &Admission<Job>,
    pool: &Arc<WorkerPool>,
    sessions: &Arc<SessionCache>,
    max_batch: usize,
    batch_hook: Option<&(dyn Fn(usize) + Send + Sync)>,
    sink: &BatchSink,
) {
    let metrics = Metrics {
        batches: distfl_obs::counter("serve.batches"),
        batch_size: distfl_obs::gauge("serve.batch_size"),
        queue_depth: distfl_obs::gauge("serve.queue_depth"),
    };
    loop {
        let batch = queue.pop_batch(max_batch);
        if batch.is_empty() {
            return;
        }
        metrics.batches.incr();
        metrics.batch_size.set(batch.len() as f64);
        metrics.queue_depth.set(queue.depth() as f64);
        if let Some(hook) = batch_hook {
            hook(batch.len());
        }
        let units = partition(&batch);
        let unit_responses = pool.map_indexed(units.len(), |u| {
            units[u]
                .iter()
                .map(|&index| execute(&batch[index].request, sessions))
                .collect::<Vec<String>>()
        });
        // Scatter unit results back to admission order.
        let mut responses: Vec<Option<(u64, String)>> = batch.iter().map(|_| None).collect();
        for (unit, rendered) in units.iter().zip(unit_responses) {
            for (&index, response) in unit.iter().zip(rendered) {
                responses[index] = Some((batch[index].conn, response));
            }
        }
        sink(responses.into_iter().map(|r| r.expect("every job answered")).collect());
    }
}

/// Executes one request on a worker: resolve the action, dispatch, render
/// the response line. Stateless solves are pure in the request; session
/// verbs are pure in the request plus the session's prior request history
/// — two identical request sequences render identical response bytes, on
/// any thread, in any batch, on any shard.
pub fn execute(request: &Request, sessions: &SessionCache) -> String {
    let _span = distfl_obs::span_arg("serve", "request", request.span_id);
    let fail = |kind: ErrorKind, detail: String| {
        let error = ServeError { kind, detail, id: Some(request.id.clone()) };
        proto::render_error(&error, request.span_id)
    };
    match &request.action {
        Action::Solve { solver, seed, source } => {
            let instance = match build_source(source) {
                Ok(instance) => instance,
                Err(detail) => return fail(ErrorKind::InvalidInstance, detail),
            };
            // Resolve `auto` here (not inside `solve`) so the response can
            // report the route and the per-route counter can tick.
            let resolved = solver.resolve(&instance);
            let routed = (*solver != resolved).then_some(resolved);
            if let Some(resolved) = routed {
                distfl_obs::counter(auto_route_counter(resolved)).incr();
            }
            match resolved.solve(&instance, *seed) {
                Ok(outcome) => render_outcome(request, *solver, *seed, routed, &instance, &outcome),
                Err(e) => fail(ErrorKind::SolverFailed, e.to_string()),
            }
        }
        Action::Create { session, source } => {
            let instance = match build_source(source) {
                Ok(instance) => instance,
                Err(detail) => return fail(ErrorKind::InvalidInstance, detail),
            };
            let shape = SessionShape {
                facilities: instance.num_facilities(),
                clients: instance.num_clients(),
                links: instance.num_links(),
                epoch: 0,
            };
            sessions.create(session, instance);
            proto::render_create_ack(request, session, shape)
        }
        Action::Mutate { session, delta } => {
            let Some(handle) = sessions.get(session) else {
                return fail(ErrorKind::UnknownSession, unknown_session_detail(session));
            };
            let batch = match build_delta(delta) {
                Ok(batch) => batch,
                Err(detail) => return fail(ErrorKind::InvalidInstance, detail),
            };
            let mut guard = handle.lock().unwrap();
            let SessionState { instance, warm, epoch } = &mut *guard;
            // `apply_delta` validates before mutating, so a rejected
            // batch leaves the session exactly as it was.
            let report = match instance.apply_delta(&batch) {
                Ok(report) => report,
                Err(e) => return fail(ErrorKind::InvalidInstance, e.to_string()),
            };
            warm.apply_delta(instance, &report);
            *epoch += 1;
            let shape = SessionShape {
                facilities: instance.num_facilities(),
                clients: instance.num_clients(),
                links: instance.num_links(),
                epoch: *epoch,
            };
            proto::render_mutate_ack(
                request,
                session,
                shape,
                delta.remove.len(),
                delta.add.len(),
                delta.reprice.len(),
            )
        }
        Action::SessionSolve { session, solver, seed } => {
            let Some(handle) = sessions.get(session) else {
                return fail(ErrorKind::UnknownSession, unknown_session_detail(session));
            };
            let mut guard = handle.lock().unwrap();
            let SessionState { instance, warm, .. } = &mut *guard;
            // Portfolio kinds (metricball, outliers, auto) decline warm
            // sessions with `CoreError::WarmUnsupported`, which surfaces
            // here as a typed solver_failed response — the documented
            // session boundary.
            match solver.solve_warm(instance, *seed, warm) {
                Ok(outcome) => render_outcome(request, *solver, *seed, None, instance, &outcome),
                Err(e) => fail(ErrorKind::SolverFailed, e.to_string()),
            }
        }
        Action::Drop { session } => {
            if sessions.drop_session(session) {
                proto::render_drop_ack(request, session)
            } else {
                fail(ErrorKind::UnknownSession, unknown_session_detail(session))
            }
        }
    }
}

fn unknown_session_detail(session: &str) -> String {
    format!("session '{session}' is not held (never created, dropped, or evicted)")
}

/// Materializes a request's instance payload.
fn build_source(source: &InstanceSource) -> Result<Instance, String> {
    match source {
        InstanceSource::Inline(instance) => Ok(instance.clone()),
        InstanceSource::OrLib(payload) => {
            distfl_instance::orlib::from_str(payload).map_err(|e| e.to_string())
        }
    }
}

/// Converts a wire [`DeltaSpec`] into a [`DeltaBatch`], validating costs
/// (id-range errors are left to `apply_delta`, which knows the shape).
fn build_delta(spec: &DeltaSpec) -> Result<DeltaBatch, String> {
    let mut batch = DeltaBatch::new();
    for &j in &spec.remove {
        batch.remove_client(ClientId::new(j));
    }
    for &(j, i, c) in &spec.reprice {
        let cost = Cost::new(c).map_err(|e| format!("reprice ({j},{i}): {e}"))?;
        batch.reprice(ClientId::new(j), FacilityId::new(i), cost);
    }
    for (index, links) in spec.add.iter().enumerate() {
        let p = batch.add_client();
        for &(i, c) in links {
            let cost = Cost::new(c).map_err(|e| format!("add[{index}] facility {i}: {e}"))?;
            batch.link(p, FacilityId::new(i), cost).map_err(|e| format!("add[{index}]: {e}"))?;
        }
    }
    Ok(batch)
}

/// The per-route counter name for an `auto` request that resolved to
/// `kind`. A match (not `format!`) because obs counter names are
/// `&'static str`; `resolve` never returns `Auto`, so that arm is
/// unreachable.
fn auto_route_counter(kind: distfl_core::SolverKind) -> &'static str {
    use distfl_core::SolverKind;
    match kind {
        SolverKind::Greedy => "serve.auto.greedy",
        SolverKind::LocalSearch => "serve.auto.local-search",
        SolverKind::JainVazirani => "serve.auto.jv",
        SolverKind::PayDual => "serve.auto.paydual",
        SolverKind::MetricBall => "serve.auto.metricball",
        SolverKind::MetricOutliers => "serve.auto.outliers",
        SolverKind::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// Renders a solve outcome as a success line.
fn render_outcome(
    request: &Request,
    solver: distfl_core::SolverKind,
    seed: u64,
    routed: Option<distfl_core::SolverKind>,
    instance: &Instance,
    outcome: &distfl_core::Outcome,
) -> String {
    let cost = outcome.solution.cost(instance).value();
    let open: Vec<usize> = outcome.solution.open_facilities().map(|i| i.index()).collect();
    let rounds = outcome.transcript.as_ref().map(|t| t.num_rounds()).or(outcome.modeled_rounds);
    proto::render_success(request, solver, seed, routed, cost, &open, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_line, Parsed};
    use std::sync::Mutex;

    fn request(line: &str) -> Request {
        match parse_line(line).unwrap() {
            Parsed::Request(req) => *req,
            other => panic!("expected request, got {other:?}"),
        }
    }

    fn cache() -> Arc<SessionCache> {
        Arc::new(SessionCache::new(8))
    }

    type Collected = Arc<Mutex<Vec<(u64, String)>>>;

    /// A sink collecting every delivered (conn, response) pair in order.
    fn collecting_sink() -> (Collected, Box<BatchSink>) {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let collected = Arc::clone(&collected);
            Box::new(move |batch: Vec<(u64, String)>| {
                collected.lock().unwrap().extend(batch);
            })
        };
        (collected, sink)
    }

    #[test]
    fn execute_is_deterministic_across_pool_sizes() {
        let line = r#"{"id":"d","solver":"paydual","seed":9,"orlib":"2 3\n0 4\n0 6\n0\n1 5\n0\n2 2\n0\n9 1\n"}"#;
        let req = request(line);
        let direct = execute(&req, &cache());
        distfl_obs::validate_json(&direct).unwrap();
        for workers in [0, 2] {
            let pool = Arc::new(WorkerPool::new(workers));
            let sessions = cache();
            let queue = Admission::new(8);
            for _ in 0..3 {
                queue.push(Job { request: req.clone(), conn: 1 }).unwrap();
            }
            queue.close();
            let (collected, sink) = collecting_sink();
            run_shard(&queue, &pool, &sessions, 4, None, &*sink);
            let responses = collected.lock().unwrap();
            assert_eq!(responses.len(), 3);
            for (_, r) in responses.iter() {
                assert_eq!(r, &direct, "workers={workers}");
            }
        }
    }

    #[test]
    fn orlib_parse_failures_surface_line_numbers() {
        let req = request(r#"{"id":"bad","solver":"greedy","orlib":"1 1\n0 x\n0\n1\n"}"#);
        let response = execute(&req, &cache());
        distfl_obs::validate_json(&response).unwrap();
        assert!(response.contains("\"kind\":\"invalid_instance\""), "{response}");
        assert!(response.contains("line 2"), "{response}");
    }

    #[test]
    fn run_shard_answers_every_job_in_admission_order() {
        let pool = Arc::new(WorkerPool::new(2));
        let sessions = cache();
        let queue = Admission::new(64);
        for i in 0..40u64 {
            let line = format!(
                r#"{{"id":"n{i}","solver":"greedy","instance":{{"opening":[1.0],"links":[[0,1.0]]}}}}"#
            );
            queue.push(Job { request: request(&line), conn: i }).unwrap();
        }
        queue.close();
        let (collected, sink) = collecting_sink();
        run_shard(&queue, &pool, &sessions, 16, None, &*sink);
        let responses = collected.lock().unwrap();
        assert_eq!(responses.len(), 40, "every admitted job answered");
        let conns: Vec<u64> = responses.iter().map(|(c, _)| *c).collect();
        assert_eq!(conns, (0..40).collect::<Vec<u64>>(), "admission order preserved");
    }

    #[test]
    fn partition_groups_same_session_jobs_in_admission_order() {
        let jobs: Vec<Job> = [
            r#"{"id":"a","solver":"greedy","instance":{"opening":[1.0],"links":[[0,1.0]]}}"#
                .to_string(),
            r#"{"cmd":"create","id":"b","session":"s1","instance":{"opening":[1.0],"links":[[0,1.0]]}}"#
                .to_string(),
            r#"{"cmd":"create","id":"c","session":"s2","instance":{"opening":[1.0],"links":[[0,1.0]]}}"#
                .to_string(),
            r#"{"cmd":"solve","id":"d","session":"s1","solver":"greedy"}"#.to_string(),
            r#"{"id":"e","solver":"greedy","instance":{"opening":[1.0],"links":[[0,1.0]]}}"#
                .to_string(),
            r#"{"cmd":"drop","id":"f","session":"s1"}"#.to_string(),
        ]
        .iter()
        .enumerate()
        .map(|(i, line)| Job { request: request(line), conn: i as u64 })
        .collect();
        let units = partition(&jobs);
        assert_eq!(units, vec![vec![0], vec![1, 3, 5], vec![2], vec![4]]);
    }

    #[test]
    fn session_lifecycle_executes_through_the_cache() {
        let sessions = cache();
        let create = request(
            r#"{"cmd":"create","id":"c1","session":"s","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#,
        );
        let ack = execute(&create, &sessions);
        assert!(ack.contains("\"created\":true") && ack.contains("\"epoch\":0"), "{ack}");
        assert_eq!(sessions.len(), 1);

        // The pinned instance solves identically to a stateless solve.
        let solve = request(r#"{"cmd":"solve","id":"q1","session":"s","solver":"greedy"}"#);
        let warm = execute(&solve, &sessions);
        let stateless = execute(
            &request(
                r#"{"id":"q1","solver":"greedy","instance":{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}"#,
            ),
            &sessions,
        );
        let strip_span = |s: &str| s.split("\"span\"").next().unwrap().to_string();
        assert_eq!(strip_span(&warm), strip_span(&stateless));

        // Mutate: drop client 1, reprice (0,0), add a client on facility 1.
        let mutate = request(
            r#"{"cmd":"mutate","id":"m1","session":"s","delta":{"remove":[1],"reprice":[[0,0,1.5]],"add":[[1,0.25]]}}"#,
        );
        let ack = execute(&mutate, &sessions);
        assert!(ack.contains("\"epoch\":1"), "{ack}");
        assert!(ack.contains("\"removed\":1") && ack.contains("\"added\":1"), "{ack}");

        // Warm solve of the mutated session == stateless solve of the
        // mutated instance.
        let warm = execute(&solve, &sessions);
        let stateless = execute(
            &request(
                r#"{"id":"q1","solver":"greedy","instance":{"opening":[4.0,3.0],"links":[[0,1.5,1,2.0],[1,0.25]]}}"#,
            ),
            &sessions,
        );
        assert_eq!(strip_span(&warm), strip_span(&stateless));

        let drop = request(r#"{"cmd":"drop","id":"d1","session":"s"}"#);
        assert!(execute(&drop, &sessions).contains("\"dropped\":true"));
        let gone = execute(&drop, &sessions);
        assert!(gone.contains("\"kind\":\"unknown_session\""), "{gone}");
    }

    /// A 2×3 line-metric instance (points on a segment): the classifier
    /// verifies it and auto routes it to the metric solver.
    const METRIC_INSTANCE: &str = r#""instance":{"opening":[1.0,1.0],"links":[[0,0.25,1,0.75],[0,0.5,1,0.5],[0,0.75,1,0.25]]}"#;

    #[test]
    fn auto_requests_report_their_route_and_match_the_direct_kind() {
        let auto = execute(
            &request(&format!(r#"{{"id":"a","solver":"auto","seed":4,{METRIC_INSTANCE}}}"#)),
            &cache(),
        );
        distfl_obs::validate_json(&auto).unwrap();
        assert!(auto.contains("\"solver\":\"auto\""), "{auto}");
        assert!(auto.contains("\"routed\":\"metricball\""), "{auto}");
        let direct = execute(
            &request(&format!(r#"{{"id":"a","solver":"metricball","seed":4,{METRIC_INSTANCE}}}"#)),
            &cache(),
        );
        assert!(!direct.contains("routed"), "concrete kinds must not emit routed: {direct}");
        // From `seed` to `span` (cost, open set, rounds) the two lines are
        // byte-identical: auto ran exactly the kind it reported.
        let payload = |s: &str| s.split("\"seed\"").nth(1).unwrap().to_string();
        let strip_span = |s: &str| s.split("\"span\"").next().unwrap().to_string();
        assert_eq!(strip_span(&payload(&auto)), strip_span(&payload(&direct)));
    }

    #[test]
    fn auto_declines_warm_session_solves_with_a_typed_error() {
        let sessions = cache();
        execute(
            &request(&format!(r#"{{"cmd":"create","id":"c","session":"s",{METRIC_INSTANCE}}}"#)),
            &sessions,
        );
        for solver in ["auto", "metricball", "outliers"] {
            let line = format!(r#"{{"cmd":"solve","id":"q","session":"s","solver":"{solver}"}}"#);
            let response = execute(&request(&line), &sessions);
            assert!(response.contains("\"kind\":\"solver_failed\""), "{response}");
            assert!(response.contains("warm-start"), "{response}");
        }
        // The session survives the declined solves.
        let greedy = execute(
            &request(r#"{"cmd":"solve","id":"g","session":"s","solver":"greedy"}"#),
            &sessions,
        );
        assert!(greedy.contains("\"ok\":true"), "{greedy}");
    }

    #[test]
    fn mutate_rejections_leave_the_session_intact() {
        let sessions = cache();
        let create = request(
            r#"{"cmd":"create","id":"c1","session":"s","instance":{"opening":[4.0],"links":[[0,1.0],[0,2.0]]}}"#,
        );
        execute(&create, &sessions);
        // Client 9 does not exist: apply_delta rejects, epoch stays 0.
        let bad = request(r#"{"cmd":"mutate","id":"m1","session":"s","delta":{"remove":[9]}}"#);
        let response = execute(&bad, &sessions);
        assert!(response.contains("\"kind\":\"invalid_instance\""), "{response}");
        let handle = sessions.get("s").unwrap();
        let state = handle.lock().unwrap();
        assert_eq!(state.epoch, 0);
        assert_eq!(state.instance.num_clients(), 2);
    }
}
