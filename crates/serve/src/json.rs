//! A minimal JSON value type and recursive-descent parser.
//!
//! The workspace carries no JSON dependency by design: `distfl-obs` owns
//! the *writer* ([`distfl_obs::JsonWriter`]) and *validator*
//! ([`distfl_obs::validate_json`]); this module is the matching *reader*
//! for the serve protocol. It parses one complete JSON value into a
//! [`Json`] tree with byte-offset error reporting — enough for
//! line-delimited requests, and deliberately nothing more (no streaming,
//! no zero-copy, no serde-style typed decoding).

use std::collections::BTreeMap;

/// A parsed JSON value.
///
/// Objects preserve no duplicate keys (last wins) and are stored in a
/// [`BTreeMap`] so iteration order — and everything derived from it — is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses exactly one JSON value from `text` (surrounding whitespace
    /// allowed, trailing data rejected).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if this is a
    /// number with no fractional part representable in a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, b"true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    let mut run = *pos;
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                out.push_str(utf8_slice(b, run, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(utf8_slice(b, run, *pos)?);
                *pos += 1;
                let escaped = match b.get(*pos) {
                    Some(b'"') => '"',
                    Some(b'\\') => '\\',
                    Some(b'/') => '/',
                    Some(b'b') => '\u{8}',
                    Some(b'f') => '\u{c}',
                    Some(b'n') => '\n',
                    Some(b'r') => '\r',
                    Some(b't') => '\t',
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(b, pos)?;
                        // Decode a surrogate pair if a high surrogate is
                        // followed by \uXXXX with a low surrogate.
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let low = parse_hex4(b, pos)?;
                                let combined = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low).wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| format!("bad surrogate pair at byte {}", *pos))?
                            } else {
                                return Err(format!("lone surrogate at byte {}", *pos));
                            }
                        } else {
                            char::from_u32(u32::from(unit))
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?
                        };
                        out.push(c);
                        run = *pos;
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                };
                out.push(escaped);
                *pos += 1;
                run = *pos;
            }
            Some(c) if *c < 0x20 => return Err(format!("raw control char at byte {}", *pos)),
            Some(_) => *pos += 1,
            None => return Err("unterminated string".to_owned()),
        }
    }
}

/// The bytes `b[from..to]` as UTF-8 text.
fn utf8_slice(b: &[u8], from: usize, to: usize) -> Result<&str, String> {
    std::str::from_utf8(&b[from..to]).map_err(|_| format!("invalid UTF-8 near byte {from}"))
}

/// Four hex digits at `pos`, advancing past them.
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u16, String> {
    if b.len() < *pos + 4 {
        return Err(format!("bad \\u escape at byte {}", *pos));
    }
    let text = utf8_slice(b, *pos, *pos + 4)?;
    let unit =
        u16::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
    *pos += 4;
    Ok(unit)
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > from
    };
    let int_start = *pos;
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b[int_start] == b'0' && *pos > int_start + 1 {
        return Err(format!("leading zero at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    let text = utf8_slice(b, start, *pos)?;
    let value = text.parse::<f64>().map_err(|_| format!("bad number at byte {start}"))?;
    Ok(Json::Num(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = Json::parse(r#" {"a":[1,-2.5e1,true,null],"b":{"c":"x"}} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(-25.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[3], Json::Null);
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let v = Json::parse(r#""a\n\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"\\A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "\"\\ud800\"", "01", "nul", "--1"]
        {
            assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn round_trips_the_obs_writer_output() {
        let mut w = distfl_obs::JsonWriter::object();
        w.key("s").string("a\"b\nc");
        w.key("n").number(1.5);
        w.key("arr").begin_array();
        w.number_u64(7).boolean(false).null();
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\nc"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("4.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
