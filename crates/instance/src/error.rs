//! Error types for instance construction and parsing.

use std::fmt;

/// Errors produced while building, generating, or parsing instances.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InstanceError {
    /// A cost value was `NaN`, infinite, or negative.
    InvalidCost {
        /// The offending value.
        value: f64,
    },
    /// An instance needs at least one facility.
    NoFacilities,
    /// An instance needs at least one client.
    NoClients,
    /// A client has no link to any facility, so no feasible solution exists.
    UnreachableClient {
        /// Index of the client.
        client: usize,
    },
    /// A facility index was out of range.
    FacilityOutOfRange {
        /// The offending index.
        facility: usize,
        /// Number of facilities.
        num_facilities: usize,
    },
    /// A client index was out of range.
    ClientOutOfRange {
        /// The offending index.
        client: usize,
        /// Number of clients.
        num_clients: usize,
    },
    /// The same client/facility link was declared twice.
    DuplicateLink {
        /// Client index.
        client: usize,
        /// Facility index.
        facility: usize,
    },
    /// A generator was configured with impossible parameters.
    InvalidGenerator {
        /// Human-readable reason.
        reason: String,
    },
    /// The text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Every coefficient of the instance is zero, so the multiplicative
    /// machinery (spread, dual raising) is undefined.
    AllZeroCosts,
    /// A delta repriced a link that does not exist.
    MissingLink {
        /// Client index.
        client: usize,
        /// Facility index.
        facility: usize,
    },
    /// Two mutations in one delta batch contradict each other (duplicate
    /// removal, repricing a removed client, repricing the same link twice).
    ConflictingMutation {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::InvalidCost { value } => {
                write!(f, "invalid cost {value}: costs must be finite and non-negative")
            }
            InstanceError::NoFacilities => write!(f, "instance has no facilities"),
            InstanceError::NoClients => write!(f, "instance has no clients"),
            InstanceError::UnreachableClient { client } => {
                write!(f, "client {client} has no link to any facility")
            }
            InstanceError::FacilityOutOfRange { facility, num_facilities } => {
                write!(f, "facility index {facility} out of range ({num_facilities} facilities)")
            }
            InstanceError::ClientOutOfRange { client, num_clients } => {
                write!(f, "client index {client} out of range ({num_clients} clients)")
            }
            InstanceError::DuplicateLink { client, facility } => {
                write!(f, "duplicate link between client {client} and facility {facility}")
            }
            InstanceError::InvalidGenerator { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
            InstanceError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            InstanceError::AllZeroCosts => {
                write!(f, "all instance coefficients are zero")
            }
            InstanceError::MissingLink { client, facility } => {
                write!(f, "no link between client {client} and facility {facility}")
            }
            InstanceError::ConflictingMutation { reason } => {
                write!(f, "conflicting mutations in delta batch: {reason}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(InstanceError, &str)> = vec![
            (InstanceError::InvalidCost { value: -1.0 }, "invalid cost"),
            (InstanceError::NoFacilities, "no facilities"),
            (InstanceError::NoClients, "no clients"),
            (InstanceError::UnreachableClient { client: 3 }, "client 3"),
            (
                InstanceError::FacilityOutOfRange { facility: 9, num_facilities: 4 },
                "facility index 9",
            ),
            (InstanceError::ClientOutOfRange { client: 9, num_clients: 4 }, "client index 9"),
            (InstanceError::DuplicateLink { client: 1, facility: 2 }, "duplicate link"),
            (InstanceError::InvalidGenerator { reason: "m=0".into() }, "m=0"),
            (InstanceError::Parse { line: 4, reason: "bad".into() }, "line 4"),
            (InstanceError::AllZeroCosts, "zero"),
            (InstanceError::MissingLink { client: 2, facility: 1 }, "no link"),
            (InstanceError::ConflictingMutation { reason: "dup".into() }, "dup"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<InstanceError>();
    }
}
