//! Validated non-negative finite cost values.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::error::InstanceError;

/// A non-negative, finite cost.
///
/// `Cost` is the only numeric type instances and solutions expose: the
/// constructor rejects `NaN`, negative, and infinite inputs, so downstream
/// arithmetic (sums, comparisons, ratios) never has to reason about
/// floating-point edge cases. Unreachable client/facility pairs are modeled
/// by the *absence* of a link in [`crate::Instance`], not by an infinite
/// cost.
///
/// ```
/// use distfl_instance::Cost;
///
/// # fn main() -> Result<(), distfl_instance::InstanceError> {
/// let a = Cost::new(1.5)?;
/// let b = Cost::new(2.5)?;
/// assert_eq!((a + b).value(), 4.0);
/// assert!(a < b);
/// assert!(Cost::new(-1.0).is_err());
/// assert!(Cost::new(f64::NAN).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Cost(f64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0.0);

    /// Creates a cost, validating the value.
    ///
    /// Negative zero is normalized to `+0.0`, so the raw `f64` lanes the
    /// instance CSR exposes (see [`crate::LinkSlice`]) are totally ordered
    /// by plain `<` exactly as `Cost`'s `total_cmp` orders them — the
    /// invariant the chunked [`crate::kernels`] rely on for their
    /// tie-breaking guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::InvalidCost`] if `value` is `NaN`, infinite,
    /// or negative.
    pub fn new(value: f64) -> Result<Self, InstanceError> {
        if !value.is_finite() || value < 0.0 {
            return Err(InstanceError::InvalidCost { value });
        }
        // `-0.0 + 0.0 == +0.0`; every other finite non-negative value is
        // unchanged.
        Ok(Cost(value + 0.0))
    }

    /// The underlying value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Wraps a raw `f64` that is already known to be a valid cost — e.g. a
    /// value read back from [`crate::LinkSlice::costs`], whose entries were
    /// all validated by [`Cost::new`] at instance construction.
    ///
    /// Validity is debug-asserted; in release builds an invalid value is
    /// stored as-is, so this must only be used on values that round-trip
    /// through an existing `Cost`.
    #[inline]
    pub fn from_validated(value: f64) -> Cost {
        debug_assert!(
            value.is_finite() && value >= 0.0 && !(value == 0.0 && value.is_sign_negative()),
            "Cost::from_validated on unvalidated value {value}"
        );
        Cost(value)
    }

    /// Whether this cost is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The smaller of two costs.
    #[inline]
    pub fn min(self, other: Cost) -> Cost {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two costs.
    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: `max(self − other, 0)`.
    #[inline]
    pub fn saturating_sub(self, other: Cost) -> Cost {
        Cost((self.0 - other.0).max(0.0))
    }

    /// The ratio `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Cost) -> f64 {
        assert!(!other.is_zero(), "division by zero cost");
        self.0 / other.0
    }
}

impl PartialEq for Cost {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

// Valid because construction excludes NaN.
impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    /// Clamped at zero, like [`Cost::saturating_sub`].
    fn sub(self, rhs: Cost) -> Cost {
        self.saturating_sub(rhs)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    /// Scales a cost by a non-negative finite factor.
    ///
    /// # Panics
    ///
    /// Panics if the factor is negative or not finite.
    fn mul(self, rhs: f64) -> Cost {
        assert!(rhs.is_finite() && rhs >= 0.0, "invalid cost scale factor {rhs}");
        Cost(self.0 * rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Cost {
    type Error = InstanceError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Cost::new(value)
    }
}

impl From<Cost> for f64 {
    fn from(c: Cost) -> f64 {
        c.value()
    }
}

/// Convenience constructor for statically-known-valid costs.
///
/// # Panics
///
/// Panics if the value is invalid; intended for literals in tests and
/// examples.
#[cfg(test)]
pub(crate) fn cost(value: f64) -> Cost {
    Cost::new(value).expect("invalid literal cost")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Cost::new(0.0).is_ok());
        assert!(Cost::new(1e300).is_ok());
        assert!(Cost::new(-0.5).is_err());
        assert!(Cost::new(f64::INFINITY).is_err());
        assert!(Cost::new(f64::NEG_INFINITY).is_err());
        assert!(Cost::new(f64::NAN).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = cost(3.0);
        let b = cost(1.0);
        assert_eq!((a + b).value(), 4.0);
        assert_eq!((a - b).value(), 2.0);
        assert_eq!((b - a).value(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.0).value(), 6.0);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 4.0);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = cost(1.0);
        let b = cost(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(cost(5.0).cmp(&cost(5.0)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cost = [1.0, 2.0, 3.5].into_iter().map(cost).sum();
        assert_eq!(total.value(), 6.5);
        let empty: Cost = std::iter::empty::<Cost>().sum();
        assert_eq!(empty, Cost::ZERO);
    }

    #[test]
    fn ratio() {
        assert_eq!(cost(6.0).ratio(cost(2.0)), 3.0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn ratio_by_zero_panics() {
        let _ = cost(1.0).ratio(Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid cost scale")]
    fn negative_scale_panics() {
        let _ = cost(1.0) * -1.0;
    }

    #[test]
    fn negative_zero_is_normalized() {
        let c = Cost::new(-0.0).unwrap();
        assert!(c.value().is_sign_positive(), "-0.0 must normalize to +0.0");
        assert_eq!(c.cmp(&Cost::ZERO), std::cmp::Ordering::Equal);
        assert_eq!(Cost::from_validated(c.value()).value().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn from_validated_round_trips() {
        for v in [0.0, 1.5, 1e300, f64::MIN_POSITIVE] {
            let c = Cost::new(v).unwrap();
            assert_eq!(Cost::from_validated(c.value()), c);
        }
    }

    #[test]
    fn conversions() {
        let c = Cost::try_from(2.5).unwrap();
        assert_eq!(f64::from(c), 2.5);
        assert!(Cost::try_from(-2.5).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(cost(1.25).to_string(), "1.25");
    }
}
