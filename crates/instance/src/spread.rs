//! Coefficient-spread quantities.
//!
//! The Moscibroda–Wattenhofer trade-off is governed by the instance's
//! coefficient spread `ρ` — the ratio between the largest and the smallest
//! *non-zero* coefficient (over opening and connection costs alike). The
//! per-phase raise factor of the distributed algorithms is `B^{1/s}` where
//! `B` is the [`termination_bound`] derived from `ρ` and `m`.

use crate::cost::Cost;
use crate::instance::Instance;

/// The smallest strictly positive coefficient of the instance.
///
/// Exists by the instance invariant that not all coefficients are zero.
pub fn positive_floor(instance: &Instance) -> Cost {
    instance
        .coefficients()
        .filter(|c| !c.is_zero())
        .min()
        .expect("instance invariant: at least one positive coefficient")
}

/// The largest coefficient of the instance.
pub fn max_coefficient(instance: &Instance) -> Cost {
    instance.coefficients().max().expect("instances are non-empty")
}

/// The coefficient spread `ρ = max coefficient / min positive coefficient`.
///
/// Always at least 1.
pub fn coefficient_spread(instance: &Instance) -> f64 {
    max_coefficient(instance).ratio(positive_floor(instance)).max(1.0)
}

/// The multiplicative range `B` a client's dual variable must be able to
/// sweep before it can single-handedly pay for some facility, guaranteeing
/// termination of the dual-ascent algorithms: with per-phase factor
/// `γ = B^{1/s}`, after `s` phases every client is connected.
///
/// `B = 4·ρ` suffices: a client's dual starts at its cheapest connection
/// cost (or the positive floor if that is zero) and must reach
/// `c_ij + f_i ≤ 2·max coefficient` for its cheapest facility.
pub fn termination_bound(instance: &Instance) -> f64 {
    4.0 * coefficient_spread(instance)
}

/// The smallest per-phase factor [`phase_factor`] ever reports: below this,
/// extra phases cannot lower the factor further, so phase counts derived
/// from a target factor are capped where the clamp takes over.
pub const PHASE_FACTOR_FLOOR: f64 = 1.0 + 1e-9;

/// The per-phase raise factor `γ = B^{1/s}` for `s` phases, clamped at
/// [`PHASE_FACTOR_FLOOR`].
///
/// # Panics
///
/// Panics if `phases == 0`.
pub fn phase_factor(instance: &Instance, phases: u32) -> f64 {
    assert!(phases > 0, "need at least one phase");
    let b = termination_bound(instance);
    b.powf(1.0 / f64::from(phases)).max(PHASE_FACTOR_FLOOR)
}

/// Number of phases needed so that the per-phase factor is at most `gamma`.
///
/// Inverse of [`phase_factor`]; useful for "give me the round budget for a
/// target approximation" queries.
///
/// Degenerate inputs resolve explicitly instead of flowing through the
/// float division `ln B / ln γ`:
///
/// * `γ ≥ B` returns 1 phase — one phase already sweeps the whole dual
///   range. In particular every uniform-cost instance (spread `ρ = 1`,
///   `B = 4`) lands here for any `γ ≥ 4` without touching the logs.
/// * `γ` below [`PHASE_FACTOR_FLOOR`] clamps to the floor: the raw ratio
///   would explode toward `+inf` as `ln γ → 0` and the `as u32` cast then
///   saturates to `u32::MAX`, a phase count whose round budget
///   (`3(s+1)+2`) silently overflows `u32`. With the clamp the result is
///   the largest phase count that still lowers the factor.
///
/// # Panics
///
/// Panics if `gamma` is NaN or `gamma <= 1`.
pub fn phases_for_factor(instance: &Instance, gamma: f64) -> u32 {
    assert!(gamma > 1.0, "factor must exceed 1");
    let b = termination_bound(instance);
    if gamma >= b {
        return 1;
    }
    let per_phase = gamma.max(PHASE_FACTOR_FLOOR).ln();
    let raw = (b.ln() / per_phase).ceil();
    debug_assert!(raw.is_finite(), "B >= 4 and the factor floor keep the ratio finite");
    raw.clamp(1.0, f64::from(u32::MAX >> 8)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst(opening: &[f64], connection: &[&[f64]]) -> Instance {
        let mut b = InstanceBuilder::new();
        let fs: Vec<_> = opening.iter().map(|&f| b.add_facility(Cost::new(f).unwrap())).collect();
        for row in connection {
            let c = b.add_client();
            for (i, &v) in row.iter().enumerate() {
                b.link(c, fs[i], Cost::new(v).unwrap()).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn spread_of_uniform_instance_is_one() {
        let i = inst(&[5.0], &[&[5.0]]);
        assert_eq!(coefficient_spread(&i), 1.0);
        assert_eq!(termination_bound(&i), 4.0);
    }

    #[test]
    fn spread_ignores_zeros() {
        let i = inst(&[100.0], &[&[0.0], &[1.0]]);
        assert_eq!(positive_floor(&i).value(), 1.0);
        assert_eq!(max_coefficient(&i).value(), 100.0);
        assert_eq!(coefficient_spread(&i), 100.0);
    }

    #[test]
    fn phase_factor_monotone_in_phases() {
        let i = inst(&[1000.0], &[&[1.0]]);
        let g1 = phase_factor(&i, 1);
        let g4 = phase_factor(&i, 4);
        let g16 = phase_factor(&i, 16);
        assert!(g1 > g4 && g4 > g16);
        assert!(g16 > 1.0);
        // With s phases, gamma^s covers B.
        let b = termination_bound(&i);
        assert!(g4.powi(4) >= b * 0.999);
    }

    #[test]
    fn phases_for_factor_inverts() {
        let i = inst(&[1000.0], &[&[1.0]]);
        let s = phases_for_factor(&i, 2.0);
        let g = phase_factor(&i, s);
        assert!(g <= 2.0 + 1e-9, "factor {g} for {s} phases");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_panics() {
        let i = inst(&[1.0], &[&[1.0]]);
        let _ = phase_factor(&i, 0);
    }

    #[test]
    fn uniform_cost_instances_resolve_to_one_phase() {
        // Regression: with spread rho = 1 (every coefficient equal) the
        // termination bound is exactly 4; any target factor covering it
        // must return 1 phase explicitly, not go through the log ratio.
        let i = inst(&[5.0], &[&[5.0], &[5.0]]);
        assert_eq!(coefficient_spread(&i), 1.0);
        for gamma in [4.0, 4.5, 10.0, 1e12] {
            assert_eq!(phases_for_factor(&i, gamma), 1, "gamma {gamma}");
        }
    }

    #[test]
    fn near_one_factors_stay_within_the_round_budget() {
        // Regression: for gamma -> 1+ the raw ratio ln(B)/ln(gamma) blows
        // up and the old cast saturated to u32::MAX — a phase count whose
        // PayDual round budget 3(s+1)+2 overflows u32. The clamped count
        // must keep that arithmetic in range.
        let uniform = inst(&[5.0], &[&[5.0]]);
        let spreadful = inst(&[1000.0], &[&[1.0]]);
        for i in [&uniform, &spreadful] {
            let s = phases_for_factor(i, 1.0 + f64::EPSILON);
            assert!(s >= 1);
            assert!(s < (u32::MAX - 5) / 3, "phase count {s} overflows the 3(s+1)+2 round budget");
            // More phases than the factor floor can use are never returned.
            assert!(phase_factor(i, s) <= PHASE_FACTOR_FLOOR * (1.0 + 1e-6));
        }
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn factor_of_one_panics() {
        let i = inst(&[5.0], &[&[5.0]]);
        // A uniform-cost instance has spread exactly 1; feeding that spread
        // back in as the target factor is a caller error, reported loudly
        // rather than dividing by ln(1) = 0.
        let rho = coefficient_spread(&i);
        let _ = phases_for_factor(&i, rho);
    }
}
