//! Coefficient-spread quantities.
//!
//! The Moscibroda–Wattenhofer trade-off is governed by the instance's
//! coefficient spread `ρ` — the ratio between the largest and the smallest
//! *non-zero* coefficient (over opening and connection costs alike). The
//! per-phase raise factor of the distributed algorithms is `B^{1/s}` where
//! `B` is the [`termination_bound`] derived from `ρ` and `m`.

use crate::cost::Cost;
use crate::instance::Instance;

/// The smallest strictly positive coefficient of the instance.
///
/// Exists by the instance invariant that not all coefficients are zero.
pub fn positive_floor(instance: &Instance) -> Cost {
    instance
        .coefficients()
        .filter(|c| !c.is_zero())
        .min()
        .expect("instance invariant: at least one positive coefficient")
}

/// The largest coefficient of the instance.
pub fn max_coefficient(instance: &Instance) -> Cost {
    instance.coefficients().max().expect("instances are non-empty")
}

/// The coefficient spread `ρ = max coefficient / min positive coefficient`.
///
/// Always at least 1.
pub fn coefficient_spread(instance: &Instance) -> f64 {
    max_coefficient(instance).ratio(positive_floor(instance)).max(1.0)
}

/// The multiplicative range `B` a client's dual variable must be able to
/// sweep before it can single-handedly pay for some facility, guaranteeing
/// termination of the dual-ascent algorithms: with per-phase factor
/// `γ = B^{1/s}`, after `s` phases every client is connected.
///
/// `B = 4·ρ` suffices: a client's dual starts at its cheapest connection
/// cost (or the positive floor if that is zero) and must reach
/// `c_ij + f_i ≤ 2·max coefficient` for its cheapest facility.
pub fn termination_bound(instance: &Instance) -> f64 {
    4.0 * coefficient_spread(instance)
}

/// The per-phase raise factor `γ = B^{1/s}` for `s` phases.
///
/// # Panics
///
/// Panics if `phases == 0`.
pub fn phase_factor(instance: &Instance, phases: u32) -> f64 {
    assert!(phases > 0, "need at least one phase");
    let b = termination_bound(instance);
    b.powf(1.0 / f64::from(phases)).max(1.0 + 1e-9)
}

/// Number of phases needed so that the per-phase factor is at most `gamma`.
///
/// Inverse of [`phase_factor`]; useful for "give me the round budget for a
/// target approximation" queries.
///
/// # Panics
///
/// Panics if `gamma <= 1`.
pub fn phases_for_factor(instance: &Instance, gamma: f64) -> u32 {
    assert!(gamma > 1.0, "factor must exceed 1");
    let b = termination_bound(instance);
    (b.ln() / gamma.ln()).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst(opening: &[f64], connection: &[&[f64]]) -> Instance {
        let mut b = InstanceBuilder::new();
        let fs: Vec<_> = opening.iter().map(|&f| b.add_facility(Cost::new(f).unwrap())).collect();
        for row in connection {
            let c = b.add_client();
            for (i, &v) in row.iter().enumerate() {
                b.link(c, fs[i], Cost::new(v).unwrap()).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn spread_of_uniform_instance_is_one() {
        let i = inst(&[5.0], &[&[5.0]]);
        assert_eq!(coefficient_spread(&i), 1.0);
        assert_eq!(termination_bound(&i), 4.0);
    }

    #[test]
    fn spread_ignores_zeros() {
        let i = inst(&[100.0], &[&[0.0], &[1.0]]);
        assert_eq!(positive_floor(&i).value(), 1.0);
        assert_eq!(max_coefficient(&i).value(), 100.0);
        assert_eq!(coefficient_spread(&i), 100.0);
    }

    #[test]
    fn phase_factor_monotone_in_phases() {
        let i = inst(&[1000.0], &[&[1.0]]);
        let g1 = phase_factor(&i, 1);
        let g4 = phase_factor(&i, 4);
        let g16 = phase_factor(&i, 16);
        assert!(g1 > g4 && g4 > g16);
        assert!(g16 > 1.0);
        // With s phases, gamma^s covers B.
        let b = termination_bound(&i);
        assert!(g4.powi(4) >= b * 0.999);
    }

    #[test]
    fn phases_for_factor_inverts() {
        let i = inst(&[1000.0], &[&[1.0]]);
        let s = phases_for_factor(&i, 2.0);
        let g = phase_factor(&i, s);
        assert!(g <= 2.0 + 1e-9, "factor {g} for {s} phases");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_panics() {
        let i = inst(&[1.0], &[&[1.0]]);
        let _ = phase_factor(&i, 0);
    }
}
