//! Chunked scan primitives over the SoA cost lanes.
//!
//! The CSR adjacency stores costs and ids in separate contiguous lanes
//! (see [`crate::LinkSlice`]); these kernels are the shared inner loops
//! the solver hot paths run over those lanes. Each is written in the
//! explicitly chunked 4/8-lane slice style that autovectorizes on stable
//! rust — fixed-size chunk bodies with branchless lane math — and each
//! ships with a retained naive `*_reference` twin. The equivalence is
//! exact, not approximate: for every input the fast kernel returns the
//! bit-identical value (and the identical tie-breaking index) of its
//! reference, which is what lets the solvers built on top keep their
//! bitwise-equality guarantees against *their* references.
//!
//! # Input contract
//!
//! Cost lanes come from validated [`crate::Cost`] values, so kernels may
//! assume inputs are **NaN-free** and contain **no negative zero**
//! ([`crate::Cost::new`] normalizes `-0.0`). Under that contract `<` and
//! `total_cmp` induce the same order, `f64::min`/`max` are associative,
//! and `x + 0.0` is the identity — the three facts the chunked
//! reassociations below rely on. `+inf` is allowed (it is how callers
//! encode "no link"); subnormals and huge magnitudes are ordinary values.
//!
//! Accumulating sums (`assign_sum*`, the prefix in
//! [`fused_ratio_accumulate`]) are **not** reassociated: floating-point
//! addition is order-sensitive, and the references define the order
//! (ascending index). The chunking there vectorizes the per-lane selects
//! and divides while keeping the additive chain sequential.
//!
//! # NaN semantics (outside the contract)
//!
//! NaN-bearing lanes never occur through the validated constructors, but
//! the behavior on them is pinned by property tests so a refactor cannot
//! change it silently. [`fused_ratio_accumulate`] stays **bit-identical**
//! to its reference even with NaNs: the NaN poisons the sequential prefix
//! chain in both twins, so both behave exactly as if the lane ended just
//! before the first NaN (and the chunk lower-bound rejection can never
//! hide an improvement from a pre-NaN lane). [`min_argmin`] **diverges**:
//! its returned value is the minimum over the non-NaN entries either way,
//! but the within-chunk locate scan stops on a NaN that precedes the
//! minimum (reporting the NaN's index), and an all-NaN lane comes back
//! `(0, +inf)` where the reference propagates the leading NaN as
//! `(0, NaN)`.

/// First minimum of a cost lane: `(index, value)`, `None` when empty.
///
/// Ties break to the **lowest index** — matching a reference scan with a
/// strict `<` update, and hence (because CSR rows are sorted by id) the
/// "lowest id wins" rule of [`crate::Instance::cheapest_link`].
#[inline]
pub fn min_argmin(costs: &[f64]) -> Option<(usize, f64)> {
    if costs.is_empty() {
        return None;
    }
    let mut best = f64::INFINITY;
    let mut best_at = 0usize;
    let mut base = 0usize;
    let mut chunks = costs.chunks_exact(8);
    for chunk in &mut chunks {
        let c: &[f64; 8] = chunk.try_into().expect("chunks_exact(8)");
        // Tree-reduce the lane minimum (associative under the NaN-free,
        // no-negative-zero contract), then locate its first occurrence
        // only when the chunk actually improves.
        let m01 = c[0].min(c[1]);
        let m23 = c[2].min(c[3]);
        let m45 = c[4].min(c[5]);
        let m67 = c[6].min(c[7]);
        let m = m01.min(m23).min(m45.min(m67));
        if m < best {
            let mut k = 0usize;
            while c[k] > m {
                k += 1;
            }
            best = m;
            best_at = base + k;
        }
        base += 8;
    }
    for (k, &c) in chunks.remainder().iter().enumerate() {
        if c < best {
            best = c;
            best_at = base + k;
        }
    }
    // All-infinite lanes never improve on the initial `best`; the
    // reference returns the first element in that case, and so do we.
    if best.is_infinite() && costs[best_at] > best {
        best = costs[0];
        best_at = 0;
    }
    Some((best_at, best))
}

/// Naive scalar twin of [`min_argmin`].
pub fn min_argmin_reference(costs: &[f64]) -> Option<(usize, f64)> {
    let (&first, rest) = costs.split_first()?;
    let mut best = first;
    let mut best_at = 0usize;
    for (k, &c) in rest.iter().enumerate() {
        if c < best {
            best = c;
            best_at = k + 1;
        }
    }
    Some((best_at, best))
}

/// Number of leading elements `<= threshold` (a take-while count).
///
/// On an ascending-sorted lane this is the partition point — the shape
/// the JV tightness pointers advance by — but the definition (and the
/// reference) is the plain prefix count, so unsorted inputs are fine.
#[inline]
pub fn prefix_threshold_count(costs: &[f64], threshold: f64) -> usize {
    let mut n = 0usize;
    let mut chunks = costs.chunks_exact(8);
    for chunk in &mut chunks {
        let c: &[f64; 8] = chunk.try_into().expect("chunks_exact(8)");
        // Whole-chunk acceptance test via a max tree-reduction; only a
        // chunk containing the boundary falls back to the scalar tail.
        let m01 = c[0].max(c[1]);
        let m23 = c[2].max(c[3]);
        let m45 = c[4].max(c[5]);
        let m67 = c[6].max(c[7]);
        if m01.max(m23).max(m45.max(m67)) <= threshold {
            n += 8;
        } else {
            for &v in chunk {
                if v > threshold {
                    return n;
                }
                n += 1;
            }
            unreachable!("chunk max exceeded the threshold");
        }
    }
    for &v in chunks.remainder() {
        if v > threshold {
            break;
        }
        n += 1;
    }
    n
}

/// Naive scalar twin of [`prefix_threshold_count`].
pub fn prefix_threshold_count_reference(costs: &[f64], threshold: f64) -> usize {
    costs.iter().take_while(|&&c| c <= threshold).count()
}

/// The greedy star scan: over prefixes of `costs` (a facility's unserved
/// link costs, pre-sorted by `(cost, client)`), the best ratio
/// `(residual + prefix_k) / k` and the first `k` attaining it.
///
/// Returns `(f64::INFINITY, 0)` on an empty lane. The prefix sums form
/// the reference's exact sequential chain; the chunking batches the four
/// independent divides and the branchless best-tracking behind it, so
/// the adds stay on the critical path and everything else vectorizes.
#[inline]
pub fn fused_ratio_accumulate(costs: &[f64], residual: f64) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut best_k = 0usize;
    let mut prefix = 0.0f64;
    let mut k = 0usize;
    let mut chunks = costs.chunks_exact(4);
    for chunk in &mut chunks {
        let c: &[f64; 4] = chunk.try_into().expect("chunks_exact(4)");
        let p0 = prefix + c[0];
        let p1 = p0 + c[1];
        let p2 = p1 + c[2];
        let p3 = p2 + c[3];
        // Whole-chunk rejection on a one-division lower bound: costs are
        // non-negative, so `residual + p0` is the smallest numerator and
        // `k + 4` the largest denominator in the chunk, and rounded
        // division is monotone — `lb` never exceeds any lane's rounded
        // ratio. A chunk with `lb >= best` therefore cannot improve and
        // is dismissed for a quarter of the reference's division work;
        // the ratio curve bottoms out on a short prefix, so almost every
        // chunk takes this path. Improving chunks replay the reference's
        // in-order strict-`<` updates, preserving its first-k tie-break.
        let lb = (residual + p0) / (k + 4) as f64;
        if lb < best {
            let r0 = (residual + p0) / (k + 1) as f64;
            let r1 = (residual + p1) / (k + 2) as f64;
            let r2 = (residual + p2) / (k + 3) as f64;
            let r3 = (residual + p3) / (k + 4) as f64;
            if r0 < best {
                best = r0;
                best_k = k + 1;
            }
            if r1 < best {
                best = r1;
                best_k = k + 2;
            }
            if r2 < best {
                best = r2;
                best_k = k + 3;
            }
            if r3 < best {
                best = r3;
                best_k = k + 4;
            }
        }
        prefix = p3;
        k += 4;
    }
    for &c in chunks.remainder() {
        prefix += c;
        k += 1;
        let r = (residual + prefix) / k as f64;
        if r < best {
            best = r;
            best_k = k;
        }
    }
    (best, best_k)
}

/// Naive scalar twin of [`fused_ratio_accumulate`].
pub fn fused_ratio_accumulate_reference(costs: &[f64], residual: f64) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut best_k = 0usize;
    let mut prefix = 0.0f64;
    for (k, &c) in costs.iter().enumerate() {
        prefix += c;
        let ratio = (residual + prefix) / (k + 1) as f64;
        if ratio < best {
            best = ratio;
            best_k = k + 1;
        }
    }
    (best, best_k)
}

/// Stable in-place compaction of a paired `(ids, costs)` lane: drops every
/// entry whose id is `marked`, returning the new live length.
///
/// Order is preserved, so a scan over the compacted prefix visits exactly
/// the subsequence an unmarked-filtering scan of the original visits —
/// the property the greedy lazy heap needs to stay bitwise-equal while
/// its per-facility link lists shrink.
///
/// # Panics
///
/// Panics (via slice indexing) if the lanes differ in length or an id is
/// out of range of `marked`.
#[inline]
pub fn retain_unmarked(ids: &mut [u32], costs: &mut [f64], marked: &[bool]) -> usize {
    assert_eq!(ids.len(), costs.len(), "paired lanes must have equal length");
    let mut w = 0usize;
    for r in 0..ids.len() {
        let id = ids[r];
        let c = costs[r];
        // Branchless: always write at the cursor, advance only on keep.
        ids[w] = id;
        costs[w] = c;
        w += usize::from(!marked[id as usize]);
    }
    w
}

/// Naive twin of [`retain_unmarked`] (filters into fresh vectors).
pub fn retain_unmarked_reference(
    ids: &[u32],
    costs: &[f64],
    marked: &[bool],
) -> (Vec<u32>, Vec<f64>) {
    let mut out_ids = Vec::new();
    let mut out_costs = Vec::new();
    for (&id, &c) in ids.iter().zip(costs) {
        if !marked[id as usize] {
            out_ids.push(id);
            out_costs.push(c);
        }
    }
    (out_ids, out_costs)
}

/// Sequential (ascending-index) sum of a lane — the local-search
/// no-move assignment cost. The additive order is the reference's; only
/// the loads are chunked.
#[inline]
pub fn assign_sum(best: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    let mut chunks = best.chunks_exact(8);
    for chunk in &mut chunks {
        let c: &[f64; 8] = chunk.try_into().expect("chunks_exact(8)");
        for &v in c {
            acc += v;
        }
    }
    for &v in chunks.remainder() {
        acc += v;
    }
    acc
}

/// Naive twin of [`assign_sum`].
pub fn assign_sum_reference(best: &[f64]) -> f64 {
    best.iter().fold(0.0f64, |a, &v| a + v)
}

/// Local-search *drop* repricing: per client, fall back from the best to
/// the second-best service cost exactly when the dropped facility holds
/// the best; sum sequentially in ascending client order.
#[inline]
pub fn assign_sum_drop(best: &[f64], best_fac: &[u32], second: &[f64], drop: u32) -> f64 {
    let mut acc = 0.0f64;
    let n = best.len();
    let mut i = 0usize;
    while i + 8 <= n {
        let b: &[f64; 8] = best[i..i + 8].try_into().expect("chunk");
        let f: &[u32; 8] = best_fac[i..i + 8].try_into().expect("chunk");
        let s: &[f64; 8] = second[i..i + 8].try_into().expect("chunk");
        let mut v = [0.0f64; 8];
        for l in 0..8 {
            v[l] = if f[l] == drop { s[l] } else { b[l] };
        }
        for &x in &v {
            acc += x;
        }
        i += 8;
    }
    while i < n {
        acc += if best_fac[i] == drop { second[i] } else { best[i] };
        i += 1;
    }
    acc
}

/// Naive twin of [`assign_sum_drop`].
pub fn assign_sum_drop_reference(best: &[f64], best_fac: &[u32], second: &[f64], drop: u32) -> f64 {
    (0..best.len()).fold(0.0f64, |a, i| a + if best_fac[i] == drop { second[i] } else { best[i] })
}

/// Local-search *add* repricing: per client, the min of the current best
/// service cost and the candidate facility's link cost (`+inf` where the
/// candidate has no link); sequential sum in ascending client order.
#[inline]
pub fn assign_sum_add(best: &[f64], add_min: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    let n = best.len();
    let mut i = 0usize;
    while i + 8 <= n {
        let b: &[f64; 8] = best[i..i + 8].try_into().expect("chunk");
        let a: &[f64; 8] = add_min[i..i + 8].try_into().expect("chunk");
        let mut v = [0.0f64; 8];
        for l in 0..8 {
            v[l] = b[l].min(a[l]);
        }
        for &x in &v {
            acc += x;
        }
        i += 8;
    }
    while i < n {
        acc += best[i].min(add_min[i]);
        i += 1;
    }
    acc
}

/// Naive twin of [`assign_sum_add`].
pub fn assign_sum_add_reference(best: &[f64], add_min: &[f64]) -> f64 {
    best.iter().zip(add_min).fold(0.0f64, |a, (&b, &m)| a + b.min(m))
}

/// Local-search *swap* repricing: the drop fallback composed with the add
/// min, fused in one pass; sequential sum in ascending client order.
#[inline]
pub fn assign_sum_swap(
    best: &[f64],
    best_fac: &[u32],
    second: &[f64],
    drop: u32,
    add_min: &[f64],
) -> f64 {
    let mut acc = 0.0f64;
    let n = best.len();
    let mut i = 0usize;
    while i + 8 <= n {
        let b: &[f64; 8] = best[i..i + 8].try_into().expect("chunk");
        let f: &[u32; 8] = best_fac[i..i + 8].try_into().expect("chunk");
        let s: &[f64; 8] = second[i..i + 8].try_into().expect("chunk");
        let a: &[f64; 8] = add_min[i..i + 8].try_into().expect("chunk");
        let mut v = [0.0f64; 8];
        for l in 0..8 {
            let base = if f[l] == drop { s[l] } else { b[l] };
            v[l] = base.min(a[l]);
        }
        for &x in &v {
            acc += x;
        }
        i += 8;
    }
    while i < n {
        let base = if best_fac[i] == drop { second[i] } else { best[i] };
        acc += base.min(add_min[i]);
        i += 1;
    }
    acc
}

/// Naive twin of [`assign_sum_swap`].
pub fn assign_sum_swap_reference(
    best: &[f64],
    best_fac: &[u32],
    second: &[f64],
    drop: u32,
    add_min: &[f64],
) -> f64 {
    (0..best.len()).fold(0.0f64, |a, i| {
        let base = if best_fac[i] == drop { second[i] } else { best[i] };
        a + base.min(add_min[i])
    })
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    /// Deterministic pseudo-random lane without pulling in a RNG: a
    /// xorshift over bit patterns mapped into a positive range.
    fn lane(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 1e3
            })
            .collect()
    }

    #[test]
    fn min_argmin_matches_reference_across_lengths() {
        for len in 0..=40 {
            for seed in 1..=5u64 {
                let costs = lane(len, seed * 31 + len as u64);
                assert_eq!(min_argmin(&costs), min_argmin_reference(&costs), "len {len}");
            }
        }
    }

    #[test]
    fn min_argmin_first_index_tie_break() {
        // The minimum appears three times; the first occurrence wins in
        // every alignment relative to the 8-lane chunks.
        for pad in 0..10 {
            let mut costs = vec![5.0; pad];
            costs.extend([2.0, 7.0, 2.0, 9.0, 2.0]);
            let got = min_argmin(&costs).unwrap();
            assert_eq!(got, (pad, 2.0), "pad {pad}");
            assert_eq!(Some(got), min_argmin_reference(&costs));
        }
        let all_equal = vec![3.25; 17];
        assert_eq!(min_argmin(&all_equal), Some((0, 3.25)));
    }

    #[test]
    fn min_argmin_handles_infinities_and_extremes() {
        assert_eq!(min_argmin(&[]), None);
        let all_inf = vec![f64::INFINITY; 11];
        assert_eq!(min_argmin(&all_inf), min_argmin_reference(&all_inf));
        assert_eq!(min_argmin(&all_inf), Some((0, f64::INFINITY)));
        let mixed = [f64::INFINITY, 1e308, f64::MIN_POSITIVE, 5e-324, 0.0, f64::INFINITY, 1.0, 2.0];
        assert_eq!(min_argmin(&mixed), min_argmin_reference(&mixed));
        assert_eq!(min_argmin(&mixed), Some((4, 0.0)));
    }

    #[test]
    fn prefix_threshold_count_matches_reference() {
        for len in 0..=40 {
            for seed in 1..=5u64 {
                let mut costs = lane(len, seed * 17 + len as u64);
                costs.sort_by(f64::total_cmp);
                for t in [-1.0, 0.0, 250.0, 999.0, 1e9] {
                    assert_eq!(
                        prefix_threshold_count(&costs, t),
                        prefix_threshold_count_reference(&costs, t),
                        "len {len} t {t}"
                    );
                }
            }
        }
        // Boundary inside a full chunk.
        let costs = [1.0, 2.0, 3.0, 4.0, 9.0, 5.0, 6.0, 7.0, 1.0, 1.0];
        assert_eq!(prefix_threshold_count(&costs, 8.0), 4);
        assert_eq!(
            prefix_threshold_count(&costs, 8.0),
            prefix_threshold_count_reference(&costs, 8.0)
        );
    }

    #[test]
    fn fused_ratio_accumulate_matches_reference_bitwise() {
        for len in 0..=40 {
            for seed in 1..=5u64 {
                let costs = lane(len, seed * 13 + len as u64);
                for residual in [0.0, 1.0, 123.456, 1e9] {
                    let fast = fused_ratio_accumulate(&costs, residual);
                    let slow = fused_ratio_accumulate_reference(&costs, residual);
                    assert_eq!(fast.0.to_bits(), slow.0.to_bits(), "len {len}");
                    assert_eq!(fast.1, slow.1, "len {len}");
                }
            }
        }
        assert_eq!(fused_ratio_accumulate(&[], 3.0), (f64::INFINITY, 0));
    }

    #[test]
    fn fused_ratio_accumulate_subnormal_and_huge() {
        let costs = [5e-324, 5e-324, 1e308, 5e-324, 1e308, 1e-300, 2.0, 5e-324, 1.0];
        for residual in [0.0, 5e-324, 1e308] {
            let fast = fused_ratio_accumulate(&costs, residual);
            let slow = fused_ratio_accumulate_reference(&costs, residual);
            assert_eq!(fast.0.to_bits(), slow.0.to_bits());
            assert_eq!(fast.1, slow.1);
        }
    }

    #[test]
    fn retain_unmarked_is_stable_and_complete() {
        let mut marked = vec![false; 64];
        for id in [3usize, 7, 8, 21, 40] {
            marked[id] = true;
        }
        for len in 0..=40 {
            let ids: Vec<u32> = (0..len as u32).map(|k| (k * 7) % 64).collect();
            let costs: Vec<f64> = lane(len, 99 + len as u64);
            let (ref_ids, ref_costs) = retain_unmarked_reference(&ids, &costs, &marked);
            let mut fast_ids = ids.clone();
            let mut fast_costs = costs.clone();
            let w = retain_unmarked(&mut fast_ids, &mut fast_costs, &marked);
            assert_eq!(&fast_ids[..w], &ref_ids[..], "len {len}");
            assert_eq!(&fast_costs[..w], &ref_costs[..], "len {len}");
        }
    }

    #[test]
    fn assign_sums_match_reference_bitwise() {
        for len in 0..=40 {
            let best = lane(len, 1 + len as u64);
            let second: Vec<f64> =
                lane(len, 2 + len as u64).iter().zip(&best).map(|(x, b)| b + x).collect();
            let fac: Vec<u32> = (0..len as u32).map(|k| k % 5).collect();
            let add_min: Vec<f64> = lane(len, 3 + len as u64)
                .iter()
                .enumerate()
                .map(|(k, &x)| if k % 3 == 0 { f64::INFINITY } else { x })
                .collect();
            assert_eq!(assign_sum(&best).to_bits(), assign_sum_reference(&best).to_bits());
            for drop in 0..5u32 {
                assert_eq!(
                    assign_sum_drop(&best, &fac, &second, drop).to_bits(),
                    assign_sum_drop_reference(&best, &fac, &second, drop).to_bits(),
                    "len {len} drop {drop}"
                );
                assert_eq!(
                    assign_sum_swap(&best, &fac, &second, drop, &add_min).to_bits(),
                    assign_sum_swap_reference(&best, &fac, &second, drop, &add_min).to_bits(),
                    "len {len} drop {drop}"
                );
            }
            assert_eq!(
                assign_sum_add(&best, &add_min).to_bits(),
                assign_sum_add_reference(&best, &add_min).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn assign_sums_propagate_infinity() {
        let best = vec![f64::INFINITY; 9];
        let fac = vec![0u32; 9];
        let second = vec![f64::INFINITY; 9];
        let add_min = vec![f64::INFINITY; 9];
        assert!(assign_sum(&best).is_infinite());
        assert!(assign_sum_drop(&best, &fac, &second, 0).is_infinite());
        assert!(assign_sum_swap(&best, &fac, &second, 0, &add_min).is_infinite());
    }

    #[test]
    fn min_argmin_nan_divergence_examples() {
        // All-NaN lane: the reference's incumbent starts at the leading
        // NaN and nothing beats it; the chunked scan never improves on
        // its +inf sentinel and the all-infinite fixup does not fire
        // (`NaN > +inf` is false), so it reports `(0, +inf)`.
        let all_nan = vec![f64::NAN; 9];
        let slow = min_argmin_reference(&all_nan).unwrap();
        assert_eq!(slow.0, 0);
        assert!(slow.1.is_nan());
        assert_eq!(min_argmin(&all_nan), Some((0, f64::INFINITY)));

        // NaN ahead of the chunk minimum: the tree-min ignores the NaN
        // (`f64::min` returns the other operand), but the locate scan
        // `while c[k] > m` stops on it — right value, NaN's index.
        let lane = [9.0, f64::NAN, 1.0, 8.0, 7.0, 6.0, 5.0, 4.0];
        assert_eq!(min_argmin_reference(&lane), Some((2, 1.0)));
        assert_eq!(min_argmin(&lane), Some((1, 1.0)));
    }

    /// NaN-aware model of the reference scan: a NaN candidate never wins
    /// a strict `<`, so the result is the first-occurrence argmin over
    /// the non-NaN entries — `None` when there are none.
    fn nan_filtered_min(costs: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (k, &c) in costs.iter().enumerate() {
            if c.is_nan() {
                continue;
            }
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((k, c));
            }
        }
        best
    }

    /// A lane mixing ordinary non-negative costs with NaNs and +inf
    /// (tags 0 and 1 of a six-way draw, so about a third of the entries
    /// are non-finite).
    fn nan_lane() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec((0u32..6, 0u32..4000), 1..48).prop_map(|items| {
            items
                .into_iter()
                .map(|(tag, v)| match tag {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => f64::from(v) * 0.375,
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn min_argmin_reference_nan_semantics(costs in nan_lane()) {
            let slow = min_argmin_reference(&costs).unwrap();
            if costs[0].is_nan() {
                // A leading NaN is the unbeatable incumbent.
                prop_assert_eq!(slow.0, 0);
                prop_assert!(slow.1.is_nan());
            } else {
                // Otherwise NaNs are invisible to the scan.
                let model = nan_filtered_min(&costs).unwrap();
                prop_assert_eq!(slow.0, model.0);
                prop_assert_eq!(slow.1.to_bits(), model.1.to_bits());
            }
        }

        #[test]
        fn min_argmin_fast_nan_divergence_is_bounded(costs in nan_lane()) {
            let (at, val) = min_argmin(&costs).unwrap();
            match nan_filtered_min(&costs) {
                Some((model_at, model_val)) => {
                    // The value is always the non-NaN minimum, bit for
                    // bit; the index never points past its first
                    // occurrence and only differs by landing on a NaN
                    // earlier in the same chunk.
                    prop_assert_eq!(val.to_bits(), model_val.to_bits());
                    prop_assert!(at <= model_at);
                    prop_assert!(at == model_at || costs[at].is_nan());
                }
                None => {
                    // All-NaN lane: the documented (0, +inf) fallback.
                    prop_assert_eq!(at, 0);
                    prop_assert_eq!(val, f64::INFINITY);
                }
            }
        }

        #[test]
        fn fused_ratio_accumulate_bitwise_identical_with_nans(
            costs in nan_lane(),
            residual in (0u32..4000).prop_map(f64::from),
        ) {
            let fast = fused_ratio_accumulate(&costs, residual);
            let slow = fused_ratio_accumulate_reference(&costs, residual);
            prop_assert_eq!(fast.0.to_bits(), slow.0.to_bits());
            prop_assert_eq!(fast.1, slow.1);

            // And the shared semantic both implement: the poisoned
            // prefix makes every post-NaN ratio NaN, which never wins a
            // strict `<` — as if the lane ended just before the NaN.
            let cut = costs.iter().position(|c| c.is_nan()).unwrap_or(costs.len());
            let truncated = fused_ratio_accumulate_reference(&costs[..cut], residual);
            prop_assert_eq!(slow.0.to_bits(), truncated.0.to_bits());
            prop_assert_eq!(slow.1, truncated.1);
        }
    }
}
