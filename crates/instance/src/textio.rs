//! Plain-text instance serialization.
//!
//! A deliberately simple line-oriented format (no serde format crate
//! needed). Floats round-trip exactly via Rust's shortest-representation
//! formatting.
//!
//! ```text
//! distfl-instance v1
//! facilities 2
//! clients 2
//! opening 10 4.5
//! client 0 2 0 1.25 1 3
//! client 1 1 1 0.5
//! ```
//!
//! `client <j> <k> (<facility> <cost>){k}` lists the `k` links of client
//! `j`. Lines starting with `#` are comments.

use std::fmt::Write as _;

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::{FacilityId, Instance, InstanceBuilder};

/// The header line identifying the format version.
pub const HEADER: &str = "distfl-instance v1";

/// Serializes an instance to the text format.
pub fn to_string(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let _ = writeln!(out, "facilities {}", instance.num_facilities());
    let _ = writeln!(out, "clients {}", instance.num_clients());
    out.push_str("opening");
    for i in instance.facilities() {
        let _ = write!(out, " {}", instance.opening_cost(i).value());
    }
    out.push('\n');
    for j in instance.clients() {
        let links = instance.client_links(j);
        let _ = write!(out, "client {} {}", j.index(), links.len());
        for (i, c) in links.iter() {
            let _ = write!(out, " {i} {c}");
        }
        out.push('\n');
    }
    out
}

/// Parses an instance from the text format.
///
/// # Errors
///
/// Returns [`InstanceError::Parse`] with a 1-based line number for any
/// syntactic problem, and the usual construction errors for semantic ones
/// (duplicate links, unreachable clients, ...).
pub fn from_str(text: &str) -> Result<Instance, InstanceError> {
    let err = |line: usize, reason: &str| InstanceError::Parse { line, reason: reason.to_owned() };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(idx, l)| (idx + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (line_no, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header != HEADER {
        return Err(err(line_no, "missing or unsupported header"));
    }

    let mut expect_count = |keyword: &str| -> Result<usize, InstanceError> {
        let (line_no, line) = lines.next().ok_or_else(|| err(0, "unexpected end of input"))?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some(keyword) {
            return Err(err(line_no, &format!("expected '{keyword} <count>'")));
        }
        parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(line_no, &format!("expected a count after '{keyword}'")))
    };
    let m = expect_count("facilities")?;
    let n = expect_count("clients")?;

    let (line_no, opening_line) = lines.next().ok_or_else(|| err(0, "unexpected end of input"))?;
    let mut parts = opening_line.split_whitespace();
    if parts.next() != Some("opening") {
        return Err(err(line_no, "expected 'opening <m costs>'"));
    }
    let opening: Vec<f64> = parts
        .map(|v| v.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| err(line_no, "invalid opening cost"))?;
    if opening.len() != m {
        return Err(err(line_no, &format!("expected {m} opening costs, got {}", opening.len())));
    }

    let mut builder = InstanceBuilder::new();
    let fids: Vec<FacilityId> = opening
        .into_iter()
        .map(|f| Cost::new(f).map(|c| builder.add_facility(c)))
        .collect::<Result<_, _>>()?;
    let cids: Vec<_> = (0..n).map(|_| builder.add_client()).collect();

    let mut seen = vec![false; n];
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("client") {
            return Err(err(line_no, "expected 'client <j> <k> (<facility> <cost>)*'"));
        }
        let j: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(line_no, "invalid client index"))?;
        if j >= n {
            return Err(InstanceError::ClientOutOfRange { client: j, num_clients: n });
        }
        if std::mem::replace(&mut seen[j], true) {
            return Err(err(line_no, &format!("client {j} declared twice")));
        }
        let k: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(line_no, "invalid link count"))?;
        for _ in 0..k {
            let i: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line_no, "missing facility index"))?;
            let c: f64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line_no, "missing link cost"))?;
            if i >= m {
                return Err(InstanceError::FacilityOutOfRange { facility: i, num_facilities: m });
            }
            builder.link(cids[j], fids[i], Cost::new(c)?)?;
        }
        if parts.next().is_some() {
            return Err(err(line_no, "trailing tokens after links"));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{InstanceGenerator, UniformRandom};

    #[test]
    fn round_trip_generated_instance() {
        let inst = UniformRandom::new(4, 9).unwrap().generate(3).unwrap();
        let text = to_string(&inst);
        let parsed = from_str(&text).unwrap();
        assert_eq!(inst, parsed);
    }

    #[test]
    fn parses_documented_example() {
        let text = "\
distfl-instance v1
facilities 2
clients 2
opening 10 4.5
client 0 2 0 1.25 1 3
client 1 1 1 0.5
";
        let inst = from_str(text).unwrap();
        assert_eq!(inst.num_facilities(), 2);
        assert_eq!(inst.num_clients(), 2);
        assert_eq!(inst.num_links(), 3);
        assert_eq!(
            inst.connection_cost(crate::ClientId::new(0), FacilityId::new(1)).unwrap().value(),
            3.0
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
# a comment
distfl-instance v1

facilities 1
clients 1
# another comment
opening 2
client 0 1 0 1
";
        assert!(from_str(text).is_ok());
    }

    #[test]
    fn rejects_bad_header() {
        let e = from_str("bogus v9\nfacilities 1\n").unwrap_err();
        assert!(matches!(e, InstanceError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_wrong_opening_count() {
        let text = "distfl-instance v1\nfacilities 2\nclients 1\nopening 5\nclient 0 1 0 1\n";
        assert!(matches!(from_str(text), Err(InstanceError::Parse { line: 4, .. })));
    }

    #[test]
    fn rejects_duplicate_client_line() {
        let text = "\
distfl-instance v1
facilities 1
clients 1
opening 5
client 0 1 0 1
client 0 1 0 2
";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let text = "\
distfl-instance v1
facilities 1
clients 1
opening 5
client 0 1 7 1
";
        assert!(matches!(from_str(text), Err(InstanceError::FacilityOutOfRange { .. })));
        let text2 = "\
distfl-instance v1
facilities 1
clients 1
opening 5
client 9 1 0 1
";
        assert!(matches!(from_str(text2), Err(InstanceError::ClientOutOfRange { .. })));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let text = "\
distfl-instance v1
facilities 1
clients 1
opening 5
client 0 1 0 1 extra
";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn missing_client_line_means_unreachable() {
        let text = "\
distfl-instance v1
facilities 1
clients 2
opening 5
client 0 1 0 1
";
        assert!(matches!(from_str(text), Err(InstanceError::UnreachableClient { client: 1 })));
    }
}
