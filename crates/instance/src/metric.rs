//! Metricity diagnostics.
//!
//! An instance is *metric* if connection costs embed in a metric space,
//! which for bipartite costs is equivalent to the four-point condition
//! `c(i,j) ≤ c(i,l) + c(k,l) + c(k,j)` for all facilities `i,k` and clients
//! `j,l` (whenever all four links exist). The constant-factor baselines
//! (Jain–Vazirani, Mettu–Plaxton) assume metricity; the PODC 2005 algorithm
//! does not.

use crate::instance::{ClientId, Instance};

/// The worst additive violation of the bipartite four-point condition:
/// `max(0, c(i,j) − c(i,l) − c(k,l) − c(k,j))` over all quadruples whose
/// four links all exist. Zero (up to rounding) means the instance is
/// metric.
///
/// Runs in `O(m²·n²)`; intended for diagnostics on small and medium
/// instances.
pub fn metricity_defect(instance: &Instance) -> f64 {
    let mut worst = 0.0f64;
    for i in instance.facilities() {
        for k in instance.facilities() {
            if i == k {
                continue;
            }
            for (j, c_ij) in instance.facility_links(i).iter() {
                for (l, c_kl) in instance.facility_links(k).iter() {
                    if j == l {
                        continue;
                    }
                    let (Some(c_il), Some(c_kj)) = (
                        instance.connection_cost(ClientId::new(l), i),
                        instance.connection_cost(ClientId::new(j), k),
                    ) else {
                        continue;
                    };
                    let slack = c_ij - c_il.value() - c_kl - c_kj.value();
                    worst = worst.max(slack);
                }
            }
        }
    }
    worst
}

/// Whether the instance satisfies the bipartite four-point condition up to
/// an additive tolerance.
pub fn is_metric(instance: &Instance, tolerance: f64) -> bool {
    metricity_defect(instance) <= tolerance
}

/// The relative metricity defect: [`metricity_defect`] divided by the
/// largest connection cost (0 for single-link instances). Useful for
/// comparing how non-metric different families are.
pub fn relative_defect(instance: &Instance) -> f64 {
    // Cost lanes are NaN-free, so a plain fold computes the max.
    let max_connection = instance
        .clients()
        .flat_map(|j| instance.client_links(j).costs.iter().copied())
        .fold(0.0f64, f64::max);
    if max_connection == 0.0 {
        0.0
    } else {
        metricity_defect(instance) / max_connection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::instance::InstanceBuilder;

    fn inst_from_matrix(opening: &[f64], matrix: &[&[f64]]) -> Instance {
        let mut b = InstanceBuilder::new();
        let fs: Vec<_> = opening.iter().map(|&f| b.add_facility(Cost::new(f).unwrap())).collect();
        for row in matrix {
            let c = b.add_client();
            for (i, &v) in row.iter().enumerate() {
                b.link(c, fs[i], Cost::new(v).unwrap()).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn euclidean_matrix_is_metric() {
        // Facilities at x=0 and x=10, clients at x=2 and x=7 on a line.
        let inst = inst_from_matrix(&[1.0, 1.0], &[&[2.0, 8.0], &[7.0, 3.0]]);
        assert_eq!(metricity_defect(&inst), 0.0);
        assert!(is_metric(&inst, 0.0));
        assert_eq!(relative_defect(&inst), 0.0);
    }

    #[test]
    fn violation_is_detected_and_quantified() {
        // c(f0,c0) = 100 but the detour f0-c1-f1-c0 costs 1+1+1 = 3.
        let inst = inst_from_matrix(&[1.0, 1.0], &[&[100.0, 1.0], &[1.0, 1.0]]);
        let defect = metricity_defect(&inst);
        assert!((defect - 97.0).abs() < 1e-9, "defect {defect}");
        assert!(!is_metric(&inst, 1.0));
        assert!((relative_defect(&inst) - 0.97).abs() < 1e-9);
    }

    #[test]
    fn missing_links_make_condition_vacuous() {
        // Sparse: only a single facility, so no quadruple exists.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(1.0).unwrap());
        for _ in 0..3 {
            let c = b.add_client();
            b.link(c, f, Cost::new(9.0).unwrap()).unwrap();
        }
        let inst = b.build().unwrap();
        assert_eq!(metricity_defect(&inst), 0.0);
        assert!(is_metric(&inst, 0.0));
    }
}
