//! Integral solutions: open facilities plus a client assignment.

use serde::{Deserialize, Serialize};

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::{ClientId, FacilityId, Instance};

/// An integral facility-location solution.
///
/// Holds the set of open facilities and each client's assigned facility.
/// Construct one with [`Solution::new`] (validated against an instance) or
/// [`Solution::from_assignment`] (opens exactly the used facilities).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    open: Vec<bool>,
    assignment: Vec<FacilityId>,
}

impl Solution {
    /// Creates a solution and validates feasibility against `instance`:
    /// every client must be assigned to an *open* facility it has a link
    /// to.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] naming the first infeasible client or
    /// out-of-range index.
    pub fn new(
        instance: &Instance,
        open: Vec<bool>,
        assignment: Vec<FacilityId>,
    ) -> Result<Self, InstanceError> {
        if open.len() != instance.num_facilities() {
            return Err(InstanceError::FacilityOutOfRange {
                facility: open.len(),
                num_facilities: instance.num_facilities(),
            });
        }
        if assignment.len() != instance.num_clients() {
            return Err(InstanceError::ClientOutOfRange {
                client: assignment.len(),
                num_clients: instance.num_clients(),
            });
        }
        let solution = Solution { open, assignment };
        solution.check_feasible(instance)?;
        Ok(solution)
    }

    /// Creates a solution from an assignment alone, opening exactly the
    /// facilities that serve at least one client.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if any assigned link does not exist.
    pub fn from_assignment(
        instance: &Instance,
        assignment: Vec<FacilityId>,
    ) -> Result<Self, InstanceError> {
        let mut open = vec![false; instance.num_facilities()];
        for &i in &assignment {
            if i.index() >= open.len() {
                return Err(InstanceError::FacilityOutOfRange {
                    facility: i.index(),
                    num_facilities: open.len(),
                });
            }
            open[i.index()] = true;
        }
        Solution::new(instance, open, assignment)
    }

    /// Verifies feasibility against `instance`.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the solution's shape does not match
    /// the instance, or names the first client assigned to a closed
    /// facility or over a missing link.
    pub fn check_feasible(&self, instance: &Instance) -> Result<(), InstanceError> {
        if self.open.len() != instance.num_facilities() {
            return Err(InstanceError::FacilityOutOfRange {
                facility: self.open.len(),
                num_facilities: instance.num_facilities(),
            });
        }
        if self.assignment.len() != instance.num_clients() {
            return Err(InstanceError::ClientOutOfRange {
                client: self.assignment.len(),
                num_clients: instance.num_clients(),
            });
        }
        for j in instance.clients() {
            let i = self.assignment[j.index()];
            if i.index() >= self.open.len()
                || !self.open[i.index()]
                || instance.connection_cost(j, i).is_none()
            {
                return Err(InstanceError::UnreachableClient { client: j.index() });
            }
        }
        Ok(())
    }

    /// Whether facility `i` is open.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn is_open(&self, i: FacilityId) -> bool {
        self.open[i.index()]
    }

    /// The facility assigned to client `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn assigned(&self, j: ClientId) -> FacilityId {
        self.assignment[j.index()]
    }

    /// Iterates over the open facilities.
    pub fn open_facilities(&self) -> impl Iterator<Item = FacilityId> + '_ {
        self.open.iter().enumerate().filter(|(_, o)| **o).map(|(i, _)| FacilityId::new(i as u32))
    }

    /// Number of open facilities.
    pub fn num_open(&self) -> usize {
        self.open.iter().filter(|o| **o).count()
    }

    /// Total opening cost of the open facilities.
    pub fn opening_cost(&self, instance: &Instance) -> Cost {
        self.open_facilities().map(|i| instance.opening_cost(i)).sum()
    }

    /// Total connection cost of the assignment.
    ///
    /// # Panics
    ///
    /// Panics if any assigned link is missing from `instance` (cannot
    /// happen for a validated solution).
    pub fn connection_cost(&self, instance: &Instance) -> Cost {
        instance
            .clients()
            .map(|j| {
                instance
                    .connection_cost(j, self.assignment[j.index()])
                    .expect("validated solution references existing links")
            })
            .sum()
    }

    /// Total cost: opening plus connection.
    pub fn cost(&self, instance: &Instance) -> Cost {
        self.opening_cost(instance) + self.connection_cost(instance)
    }

    /// Returns a copy with every client reassigned to its *cheapest open*
    /// facility and unused facilities closed. Never increases cost; useful
    /// as a final polish after any algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `self` is infeasible for `instance`.
    pub fn reassign_greedily(&self, instance: &Instance) -> Solution {
        let assignment: Vec<FacilityId> = instance
            .clients()
            .map(|j| {
                // First-win strict `<` over the id-sorted row matches the
                // `(cost, facility id)`-lexicographic minimum (lanes are
                // NaN-free with no negative zero).
                let links = instance.client_links(j);
                let mut best: Option<(u32, f64)> = None;
                for (i, c) in links.iter() {
                    if self.open[i as usize] && best.is_none_or(|(_, bc)| c < bc) {
                        best = Some((i, c));
                    }
                }
                let (i, _) =
                    best.expect("feasible solution keeps at least the assigned facility open");
                FacilityId::new(i)
            })
            .collect();
        Solution::from_assignment(instance, assignment)
            .expect("reassignment over open facilities stays feasible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost;
    use crate::instance::InstanceBuilder;

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(cost(10.0));
        let f1 = b.add_facility(cost(1.0));
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f0, cost(1.0)).unwrap();
        b.link(c0, f1, cost(2.0)).unwrap();
        b.link(c1, f0, cost(5.0)).unwrap();
        b.link(c1, f1, cost(1.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cost_accounting() {
        let inst = inst();
        let sol =
            Solution::new(&inst, vec![true, true], vec![FacilityId::new(0), FacilityId::new(1)])
                .unwrap();
        assert_eq!(sol.opening_cost(&inst), cost(11.0));
        assert_eq!(sol.connection_cost(&inst), cost(2.0));
        assert_eq!(sol.cost(&inst), cost(13.0));
        assert_eq!(sol.num_open(), 2);
        assert!(sol.is_open(FacilityId::new(0)));
        assert_eq!(sol.assigned(ClientId::new(1)), FacilityId::new(1));
    }

    #[test]
    fn from_assignment_opens_used_only() {
        let inst = inst();
        let sol =
            Solution::from_assignment(&inst, vec![FacilityId::new(1), FacilityId::new(1)]).unwrap();
        assert_eq!(sol.num_open(), 1);
        assert_eq!(sol.open_facilities().collect::<Vec<_>>(), vec![FacilityId::new(1)]);
        assert_eq!(sol.cost(&inst), cost(1.0 + 2.0 + 1.0));
    }

    #[test]
    fn rejects_assignment_to_closed_facility() {
        let inst = inst();
        let out =
            Solution::new(&inst, vec![true, false], vec![FacilityId::new(0), FacilityId::new(1)]);
        assert!(matches!(out, Err(InstanceError::UnreachableClient { client: 1 })));
    }

    #[test]
    fn rejects_assignment_over_missing_link() {
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(cost(1.0));
        let _f1 = b.add_facility(cost(1.0));
        let c0 = b.add_client();
        b.link(c0, f0, cost(1.0)).unwrap();
        let inst = b.build().unwrap();
        // Client 0 has no link to facility 1.
        let out = Solution::new(&inst, vec![true, true], vec![FacilityId::new(1)]);
        assert!(matches!(out, Err(InstanceError::UnreachableClient { client: 0 })));
    }

    #[test]
    fn rejects_wrong_lengths() {
        let inst = inst();
        assert!(Solution::new(&inst, vec![true], vec![FacilityId::new(0); 2]).is_err());
        assert!(Solution::new(&inst, vec![true, true], vec![FacilityId::new(0)]).is_err());
    }

    #[test]
    fn greedy_reassignment_never_increases_cost() {
        let inst = inst();
        // Assign both clients to the expensive facility 0 while 1 is open.
        let sol =
            Solution::new(&inst, vec![true, true], vec![FacilityId::new(0), FacilityId::new(0)])
                .unwrap();
        let improved = sol.reassign_greedily(&inst);
        assert!(improved.cost(&inst) <= sol.cost(&inst));
        // Client 1 should have moved to the cheaper facility 1.
        assert_eq!(improved.assigned(ClientId::new(1)), FacilityId::new(1));
    }
}
