//! OR-Library ("cap") format support.
//!
//! The de-facto benchmark interchange for uncapacitated facility location
//! is Beasley's OR-Library format (the `cap71`–`cap134` and `capa/b/c`
//! files, also used by UflLib):
//!
//! ```text
//! m n
//! <capacity_1> <opening_cost_1>
//! ...                              (m facility lines)
//! <demand_1>
//! <c_11> <c_12> ... <c_1m>         (n blocks: demand, then m allocation
//! ...                               costs, free-form line wrapping)
//! ```
//!
//! Capacities and demands are carried by the format but ignored by the
//! uncapacitated problem (the allocation costs are already totals); the
//! parser is token-stream based, so the arbitrary line wrapping found in
//! the published files is handled. This lets `distfl` load the classic
//! benchmark suite directly — the bridge between the synthetic generators
//! and instances the facility-location literature actually reports on.

use std::fmt::Write as _;

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::{Instance, InstanceBuilder};

/// Serializes an instance in OR-Library format (capacities and demands
/// written as 0; sparse instances are rejected because the format is
/// dense).
///
/// # Errors
///
/// Returns [`InstanceError::UnreachableClient`] naming the first client
/// with a missing link if the instance is not complete.
pub fn to_string(instance: &Instance) -> Result<String, InstanceError> {
    if !instance.is_complete() {
        let j = instance
            .clients()
            .find(|&j| instance.client_links(j).len() != instance.num_facilities())
            .expect("incomplete instance has a short client");
        return Err(InstanceError::UnreachableClient { client: j.index() });
    }
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", instance.num_facilities(), instance.num_clients());
    for i in instance.facilities() {
        let _ = writeln!(out, "0 {}", instance.opening_cost(i).value());
    }
    for j in instance.clients() {
        let _ = writeln!(out, "0");
        let row: Vec<String> =
            instance.client_links(j).costs.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    Ok(out)
}

/// Parses an instance from OR-Library format.
///
/// # Errors
///
/// Returns [`InstanceError::Parse`] describing the first problem with the
/// 1-based line number the offending token sits on (the tokenizer tracks
/// line numbers even though the format wraps lines freely, so clients of
/// the serve layer can point at the exact input line). Truncated input
/// reports the last line of the text.
pub fn from_str(text: &str) -> Result<Instance, InstanceError> {
    let last_line = text.lines().count().max(1);
    let mut tokens = text
        .lines()
        .enumerate()
        .flat_map(|(index, line)| line.split_whitespace().map(move |tok| (index + 1, tok)));
    let mut next_f64 = |what: &str| -> Result<f64, InstanceError> {
        let (line, tok) = tokens.next().ok_or_else(|| InstanceError::Parse {
            line: last_line,
            reason: format!("unexpected end of input while reading {what}"),
        })?;
        tok.parse::<f64>()
            .map_err(|_| InstanceError::Parse { line, reason: format!("invalid {what}: '{tok}'") })
    };

    let m = next_f64("facility count")? as usize;
    let n = next_f64("client count")? as usize;
    if m == 0 {
        return Err(InstanceError::NoFacilities);
    }
    if n == 0 {
        return Err(InstanceError::NoClients);
    }

    let mut builder = InstanceBuilder::new();
    let mut fids = Vec::with_capacity(m);
    for _ in 0..m {
        let _capacity = next_f64("capacity")?;
        let opening = next_f64("opening cost")?;
        fids.push(builder.add_facility(Cost::new(opening)?));
    }
    for _ in 0..n {
        let _demand = next_f64("demand")?;
        let j = builder.add_client();
        for &fid in &fids {
            let c = next_f64("allocation cost")?;
            builder.link(j, fid, Cost::new(c)?)?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{InstanceGenerator, UniformRandom};
    use crate::{ClientId, FacilityId};

    /// A miniature file in the published format, with wrapped cost lines.
    const FIXTURE: &str = "\
 3 4
0 7500.5
0 8000
0 9000
 12
 100 200
 300
 7
 150 250 350
 9
 120 220 320
 4
 110 210
 310
";

    #[test]
    fn parses_the_published_shape() {
        let inst = from_str(FIXTURE).unwrap();
        assert_eq!(inst.num_facilities(), 3);
        assert_eq!(inst.num_clients(), 4);
        assert!(inst.is_complete());
        assert_eq!(inst.opening_cost(FacilityId::new(0)).value(), 7500.5);
        assert_eq!(
            inst.connection_cost(ClientId::new(0), FacilityId::new(2)).unwrap().value(),
            300.0
        );
        assert_eq!(
            inst.connection_cost(ClientId::new(3), FacilityId::new(1)).unwrap().value(),
            210.0
        );
    }

    #[test]
    fn round_trips_generated_instances() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(9).unwrap();
        let text = to_string(&inst).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(inst, parsed);
    }

    #[test]
    fn rejects_sparse_instances_on_write() {
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(1.0).unwrap());
        let _f1 = b.add_facility(Cost::new(1.0).unwrap());
        let c = b.add_client();
        b.link(c, f0, Cost::new(1.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        assert!(matches!(to_string(&inst), Err(InstanceError::UnreachableClient { client: 0 })));
    }

    #[test]
    fn rejects_truncated_input() {
        let e = from_str("2 2\n0 10\n0 20\n0\n1 2\n0\n3").unwrap_err();
        match e {
            InstanceError::Parse { line, reason } => {
                assert_eq!(line, 7, "truncation reported on the last line");
                assert!(reason.contains("end of input"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_bad_tokens_with_position() {
        let e = from_str("2 2\n0 ten\n").unwrap_err();
        match e {
            InstanceError::Parse { line, reason } => {
                assert_eq!(line, 2, "line number of 'ten'");
                assert!(reason.contains("ten"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn malformed_fixture_errors_carry_the_wrapped_line_number() {
        // The FIXTURE with one allocation cost corrupted on a *wrapped*
        // continuation line: the parser must name line 11 ("abc" below),
        // not a token index and not the logical record start.
        let malformed = "\
 3 4
0 7500.5
0 8000
0 9000
 12
 100 200
 300
 7
 150 250 350
 9
 120 abc 320
 4
 110 210
 310
";
        let e = from_str(malformed).unwrap_err();
        match e {
            InstanceError::Parse { line, reason } => {
                assert_eq!(line, 11, "error on the wrapped cost line");
                assert!(reason.contains("abc"), "{reason}");
                assert!(reason.contains("allocation cost"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_empty_dimensions() {
        assert!(matches!(from_str("0 5"), Err(InstanceError::NoFacilities)));
        assert!(matches!(from_str("5 0"), Err(InstanceError::NoClients)));
    }

    #[test]
    fn negative_costs_are_rejected() {
        let e = from_str("1 1\n0 -5\n0\n1\n").unwrap_err();
        assert!(matches!(e, InstanceError::InvalidCost { .. }));
    }
}
