//! Instance transformations.
//!
//! Utilities a workload pipeline needs around the generators: uniform
//! scaling (the algorithms are scale-invariant — asserted in the
//! integration tests), normalization to a unit cost floor, multiplicative
//! noise, induced sub-instances, and disjoint unions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::{ClientId, FacilityId, Instance, InstanceBuilder};
use crate::spread;

/// Rebuilds an instance with every coefficient passed through `map`.
fn map_costs(
    instance: &Instance,
    mut map: impl FnMut(Cost) -> Result<Cost, InstanceError>,
) -> Result<Instance, InstanceError> {
    let mut b = InstanceBuilder::new();
    let fids: Vec<FacilityId> = instance
        .facilities()
        .map(|i| Ok(b.add_facility(map(instance.opening_cost(i))?)))
        .collect::<Result<_, InstanceError>>()?;
    for j in instance.clients() {
        let c = b.add_client();
        for (i, cost) in instance.client_links(j).iter() {
            b.link(c, fids[i as usize], map(Cost::from_validated(cost))?)?;
        }
    }
    b.build()
}

/// Multiplies every coefficient by `factor`.
///
/// # Errors
///
/// Returns [`InstanceError::InvalidCost`] for non-finite or negative
/// factors (via the cost constructor).
pub fn scale_costs(instance: &Instance, factor: f64) -> Result<Instance, InstanceError> {
    map_costs(instance, |c| Cost::new(c.value() * factor))
}

/// Rescales the instance so its smallest positive coefficient is exactly
/// 1, returning the instance and the scale that was divided out.
///
/// # Errors
///
/// Propagates cost-construction errors (cannot occur for valid inputs).
pub fn normalize(instance: &Instance) -> Result<(Instance, f64), InstanceError> {
    let floor = spread::positive_floor(instance).value();
    Ok((scale_costs(instance, 1.0 / floor)?, floor))
}

/// Multiplies every coefficient independently by `1 + U[-noise, +noise]`.
///
/// # Errors
///
/// Returns [`InstanceError::InvalidGenerator`] for `noise` outside
/// `[0, 1)`.
pub fn perturb(instance: &Instance, noise: f64, seed: u64) -> Result<Instance, InstanceError> {
    if !noise.is_finite() || !(0.0..1.0).contains(&noise) {
        return Err(InstanceError::InvalidGenerator {
            reason: format!("noise must lie in [0, 1), got {noise}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    map_costs(instance, |c| {
        let factor = 1.0 + rng.gen_range(-noise..=noise);
        Cost::new(c.value() * factor)
    })
}

/// The sub-instance induced by keeping only the given facilities (client
/// set unchanged).
///
/// # Errors
///
/// Returns [`InstanceError::UnreachableClient`] if some client loses all
/// its links.
pub fn restrict_facilities(
    instance: &Instance,
    keep: &[FacilityId],
) -> Result<Instance, InstanceError> {
    let mut keep_mask = vec![false; instance.num_facilities()];
    for &i in keep {
        if i.index() >= keep_mask.len() {
            return Err(InstanceError::FacilityOutOfRange {
                facility: i.index(),
                num_facilities: keep_mask.len(),
            });
        }
        keep_mask[i.index()] = true;
    }
    let mut b = InstanceBuilder::new();
    let mut new_id = vec![None; instance.num_facilities()];
    for i in instance.facilities() {
        if keep_mask[i.index()] {
            new_id[i.index()] = Some(b.add_facility(instance.opening_cost(i)));
        }
    }
    for j in instance.clients() {
        let c = b.add_client();
        for (i, cost) in instance.client_links(j).iter() {
            if let Some(ni) = new_id[i as usize] {
                b.link(c, ni, Cost::from_validated(cost))?;
            }
        }
    }
    b.build()
}

/// The sub-instance induced by keeping only the given clients (facility
/// set unchanged; facilities may end up linkless, which is allowed).
///
/// # Errors
///
/// Returns [`InstanceError::ClientOutOfRange`] for bad indices or
/// [`InstanceError::NoClients`] if `keep` is empty.
pub fn restrict_clients(instance: &Instance, keep: &[ClientId]) -> Result<Instance, InstanceError> {
    let mut b = InstanceBuilder::new();
    let fids: Vec<FacilityId> =
        instance.facilities().map(|i| b.add_facility(instance.opening_cost(i))).collect();
    for &j in keep {
        if j.index() >= instance.num_clients() {
            return Err(InstanceError::ClientOutOfRange {
                client: j.index(),
                num_clients: instance.num_clients(),
            });
        }
        let c = b.add_client();
        for (i, cost) in instance.client_links(j).iter() {
            b.link(c, fids[i as usize], Cost::from_validated(cost))?;
        }
    }
    b.build()
}

/// Disjoint union: facilities and clients of `a` followed by those of
/// `b`, with no cross links (two independent markets in one instance).
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid inputs).
pub fn merge(a: &Instance, b: &Instance) -> Result<Instance, InstanceError> {
    let mut builder = InstanceBuilder::new();
    let a_fids: Vec<FacilityId> =
        a.facilities().map(|i| builder.add_facility(a.opening_cost(i))).collect();
    let b_fids: Vec<FacilityId> =
        b.facilities().map(|i| builder.add_facility(b.opening_cost(i))).collect();
    for j in a.clients() {
        let c = builder.add_client();
        for (i, cost) in a.client_links(j).iter() {
            builder.link(c, a_fids[i as usize], Cost::from_validated(cost))?;
        }
    }
    for j in b.clients() {
        let c = builder.add_client();
        for (i, cost) in b.client_links(j).iter() {
            builder.link(c, b_fids[i as usize], Cost::from_validated(cost))?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridNetwork, InstanceGenerator, UniformRandom};

    fn inst(seed: u64) -> Instance {
        UniformRandom::new(5, 12).unwrap().generate(seed).unwrap()
    }

    #[test]
    fn scaling_scales_every_coefficient() {
        let a = inst(1);
        let b = scale_costs(&a, 2.5).unwrap();
        for (ca, cb) in a.coefficients().zip(b.coefficients()) {
            assert!((cb.value() - 2.5 * ca.value()).abs() < 1e-9);
        }
        // Spread is scale-invariant.
        assert!((spread::coefficient_spread(&a) - spread::coefficient_spread(&b)).abs() < 1e-6);
    }

    #[test]
    fn normalize_sets_the_floor_to_one() {
        let a = inst(2);
        let (normalized, scale) = normalize(&a).unwrap();
        assert!((spread::positive_floor(&normalized).value() - 1.0).abs() < 1e-12);
        assert!(scale > 0.0);
        // Round-trip: scaling back recovers the original.
        let back = scale_costs(&normalized, scale).unwrap();
        for (ca, cb) in a.coefficients().zip(back.coefficients()) {
            assert!((ca.value() - cb.value()).abs() < 1e-9 * ca.value().max(1.0));
        }
    }

    #[test]
    fn perturbation_stays_in_the_band() {
        let a = inst(3);
        let b = perturb(&a, 0.2, 7).unwrap();
        for (ca, cb) in a.coefficients().zip(b.coefficients()) {
            let ratio = cb.value() / ca.value();
            assert!((0.8..=1.2).contains(&ratio), "ratio {ratio}");
        }
        assert!(perturb(&a, 1.0, 7).is_err());
        assert!(perturb(&a, -0.1, 7).is_err());
        // Deterministic per seed.
        assert_eq!(perturb(&a, 0.2, 7).unwrap(), b);
    }

    #[test]
    fn facility_restriction_keeps_reachable_clients() {
        let a = inst(4);
        let keep = [FacilityId::new(0), FacilityId::new(3)];
        let restricted = restrict_facilities(&a, &keep).unwrap();
        assert_eq!(restricted.num_facilities(), 2);
        assert_eq!(restricted.num_clients(), a.num_clients());
        assert_eq!(restricted.opening_cost(FacilityId::new(1)), a.opening_cost(FacilityId::new(3)));
        // Dropping every facility a client uses is an error.
        let sparse = GridNetwork::with_radius(8, 8, 4, 16, 2).unwrap().generate(1).unwrap();
        let only_first = [FacilityId::new(0)];
        let out = restrict_facilities(&sparse, &only_first);
        // Either every client reaches facility 0 (fine) or the builder
        // rejects with UnreachableClient.
        if let Err(e) = out {
            assert!(matches!(e, InstanceError::UnreachableClient { .. }));
        }
    }

    #[test]
    fn client_restriction_selects_rows() {
        let a = inst(5);
        let keep = [ClientId::new(2), ClientId::new(7), ClientId::new(11)];
        let restricted = restrict_clients(&a, &keep).unwrap();
        assert_eq!(restricted.num_clients(), 3);
        for (new_j, &old_j) in keep.iter().enumerate() {
            for i in a.facilities() {
                assert_eq!(
                    restricted.connection_cost(ClientId::new(new_j as u32), i),
                    a.connection_cost(old_j, i)
                );
            }
        }
        assert!(restrict_clients(&a, &[]).is_err());
        assert!(restrict_clients(&a, &[ClientId::new(99)]).is_err());
    }

    #[test]
    fn merge_is_a_disjoint_union() {
        let a = inst(6);
        let b = inst(7);
        let merged = merge(&a, &b).unwrap();
        assert_eq!(merged.num_facilities(), 10);
        assert_eq!(merged.num_clients(), 24);
        assert_eq!(merged.num_links(), a.num_links() + b.num_links());
        // No cross links.
        assert_eq!(merged.connection_cost(ClientId::new(0), FacilityId::new(7)), None);
        // Costs preserved with offsets.
        assert_eq!(
            merged.connection_cost(ClientId::new(12), FacilityId::new(5)),
            b.connection_cost(ClientId::new(0), FacilityId::new(0))
        );
    }
}
