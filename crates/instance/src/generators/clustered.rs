//! Metric instances with clustered (Gaussian-blob) geometry.

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;

use super::{check_sizes, dist, rng_for, standard_normal, uniform_in, InstanceGenerator};

/// Metric instances where clients form Gaussian blobs around `clusters`
/// random centers and facilities are drawn near centers as well. Clustered
/// demand is where facility-location algorithms differentiate: the optimal
/// solution opens roughly one facility per cluster, so the greedy's star
/// ratios and the dual-ascent payments have strong structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustered {
    clusters: usize,
    m: usize,
    n: usize,
    side: f64,
    spread: f64,
}

impl Clustered {
    /// Defaults: `side = 100`, blob standard deviation `side/20`.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or zero clusters.
    pub fn new(clusters: usize, m: usize, n: usize) -> Result<Self, InstanceError> {
        Self::with_geometry(clusters, m, n, 100.0, 5.0)
    }

    /// Explicit square side and blob standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions, zero clusters, or
    /// non-positive geometry parameters.
    pub fn with_geometry(
        clusters: usize,
        m: usize,
        n: usize,
        side: f64,
        spread: f64,
    ) -> Result<Self, InstanceError> {
        check_sizes(m, n)?;
        if clusters == 0 {
            return Err(InstanceError::InvalidGenerator {
                reason: "need at least one cluster".to_owned(),
            });
        }
        if !(side.is_finite() && spread.is_finite()) || side <= 0.0 || spread <= 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("side ({side}) and spread ({spread}) must be positive"),
            });
        }
        Ok(Clustered { clusters, m, n, side, spread })
    }
}

impl InstanceGenerator for Clustered {
    fn name(&self) -> &'static str {
        "clustered"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let mut rng = rng_for(seed);
        let centers: Vec<(f64, f64)> = (0..self.clusters)
            .map(|_| (uniform_in(&mut rng, 0.0, self.side), uniform_in(&mut rng, 0.0, self.side)))
            .collect();
        let blob_point = |rng: &mut rand::rngs::StdRng, center: (f64, f64)| {
            let x = (center.0 + self.spread * standard_normal(rng)).clamp(0.0, self.side);
            let y = (center.1 + self.spread * standard_normal(rng)).clamp(0.0, self.side);
            (x, y)
        };
        let facilities: Vec<(f64, f64)> =
            (0..self.m).map(|k| blob_point(&mut rng, centers[k % self.clusters])).collect();
        let clients: Vec<(f64, f64)> =
            (0..self.n).map(|k| blob_point(&mut rng, centers[k % self.clusters])).collect();
        // Opening costs comparable to an inter-cluster hop, so opening one
        // facility per cluster is the interesting regime.
        let opening: Vec<Cost> = (0..self.m)
            .map(|_| Cost::new(uniform_in(&mut rng, self.side / 4.0, self.side / 2.0)))
            .collect::<Result<_, _>>()?;
        let costs: Vec<Vec<Cost>> = clients
            .iter()
            .map(|&p| facilities.iter().map(|&q| Cost::new(dist(p, q))).collect::<Result<_, _>>())
            .collect::<Result<_, _>>()?;
        Instance::from_dense(opening, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric;

    #[test]
    fn shape_and_metricity() {
        let inst = Clustered::new(3, 6, 18).unwrap().generate(1).unwrap();
        assert_eq!(inst.num_facilities(), 6);
        assert_eq!(inst.num_clients(), 18);
        assert!(inst.is_complete());
        assert!(metric::is_metric(&inst, 1e-9));
    }

    #[test]
    fn clustering_creates_cheap_links() {
        // With tight blobs, each client should have at least one facility
        // far closer than the square diameter.
        let inst = Clustered::with_geometry(4, 8, 24, 100.0, 1.0).unwrap().generate(7).unwrap();
        let mut near = 0;
        for j in inst.clients() {
            let (_, c) = inst.cheapest_link(j);
            if c.value() < 25.0 {
                near += 1;
            }
        }
        assert!(near >= 20, "only {near}/24 clients have a nearby facility");
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Clustered::new(0, 3, 3).is_err());
        assert!(Clustered::with_geometry(2, 3, 3, -1.0, 1.0).is_err());
        assert!(Clustered::with_geometry(2, 3, 3, 10.0, 0.0).is_err());
    }
}
