//! Metric instances from random points in the plane.

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;

use super::{check_sizes, dist, rng_for, uniform_in, InstanceGenerator};

/// Dense metric instances: facilities and clients are uniform points in a
/// `side × side` square, connection costs are Euclidean distances, opening
/// costs are uniform in `[side/4, side)`. The constant-factor baselines
/// (Jain–Vazirani, Mettu–Plaxton) are applicable on this family.
#[derive(Debug, Clone, PartialEq)]
pub struct Euclidean {
    m: usize,
    n: usize,
    side: f64,
}

impl Euclidean {
    /// Unit-square-scaled default (`side = 100`).
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions.
    pub fn new(m: usize, n: usize) -> Result<Self, InstanceError> {
        Self::with_side(m, n, 100.0)
    }

    /// Explicit square side length.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or a non-positive
    /// side.
    pub fn with_side(m: usize, n: usize, side: f64) -> Result<Self, InstanceError> {
        check_sizes(m, n)?;
        if !side.is_finite() || side <= 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("side must be positive, got {side}"),
            });
        }
        Ok(Euclidean { m, n, side })
    }
}

impl InstanceGenerator for Euclidean {
    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let mut rng = rng_for(seed);
        let point = |rng: &mut rand::rngs::StdRng| {
            (uniform_in(rng, 0.0, self.side), uniform_in(rng, 0.0, self.side))
        };
        let facilities: Vec<(f64, f64)> = (0..self.m).map(|_| point(&mut rng)).collect();
        let clients: Vec<(f64, f64)> = (0..self.n).map(|_| point(&mut rng)).collect();
        let opening: Vec<Cost> = (0..self.m)
            .map(|_| Cost::new(uniform_in(&mut rng, self.side / 4.0, self.side)))
            .collect::<Result<_, _>>()?;
        let costs: Vec<Vec<Cost>> = clients
            .iter()
            .map(|&p| facilities.iter().map(|&q| Cost::new(dist(p, q))).collect::<Result<_, _>>())
            .collect::<Result<_, _>>()?;
        Instance::from_dense(opening, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric;

    #[test]
    fn shape() {
        let inst = Euclidean::new(4, 10).unwrap().generate(5).unwrap();
        assert_eq!(inst.num_facilities(), 4);
        assert_eq!(inst.num_clients(), 10);
        assert!(inst.is_complete());
    }

    #[test]
    fn instances_are_metric() {
        let inst = Euclidean::new(5, 8).unwrap().generate(11).unwrap();
        assert!(metric::is_metric(&inst, 1e-9));
    }

    #[test]
    fn costs_bounded_by_diameter() {
        let side = 50.0;
        let inst = Euclidean::with_side(3, 6, side).unwrap().generate(2).unwrap();
        let diag = side * std::f64::consts::SQRT_2;
        for j in inst.clients() {
            for (_, c) in inst.client_links(j) {
                assert!(c <= diag);
            }
        }
    }

    #[test]
    fn rejects_invalid_side() {
        assert!(Euclidean::with_side(2, 2, 0.0).is_err());
        assert!(Euclidean::with_side(2, 2, -3.0).is_err());
        assert!(Euclidean::with_side(2, 2, f64::INFINITY).is_err());
    }
}
