//! Workload generators.
//!
//! The PODC 2005 paper is purely analytical; these synthetic families are
//! the evaluation inputs (see DESIGN.md §5). They span the axes the paper's
//! bounds depend on:
//!
//! * **metric vs non-metric** — [`Euclidean`], [`Clustered`], [`GridNetwork`]
//!   produce metric instances; [`UniformRandom`], [`PowerLaw`],
//!   [`AdversarialGreedy`] are non-metric; [`Metricized`] wraps any family
//!   with its shortest-path metric closure so every family has a metric
//!   twin,
//! * **coefficient spread `ρ`** — [`PowerLaw`] pins `ρ` exactly,
//! * **sparse vs dense** — [`GridNetwork`] is radius-sparse, the rest dense,
//! * **application-shaped** — [`CdnTrace`] is the synthetic stand-in for a
//!   production content-delivery demand trace.
//!
//! All generators are deterministic functions of their parameters and the
//! `seed` passed to [`InstanceGenerator::generate`].

mod adversarial;
mod cdn;
mod clustered;
mod euclidean;
mod grid;
mod line;
mod metricize;
mod powerlaw;
mod uniform;

pub use adversarial::AdversarialGreedy;
pub use cdn::CdnTrace;
pub use clustered::Clustered;
pub use euclidean::Euclidean;
pub use grid::GridNetwork;
pub use line::{LineCity, LineLayout};
pub use metricize::{metric_closure, Metricized};
pub use powerlaw::PowerLaw;
pub use uniform::UniformRandom;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::InstanceError;
use crate::instance::Instance;

/// A deterministic, seedable source of facility-location instances.
pub trait InstanceGenerator {
    /// Short machine-readable family name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Generates an instance for the given seed. Equal seeds yield equal
    /// instances.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the configured parameters cannot
    /// produce a valid instance.
    fn generate(&self, seed: u64) -> Result<Instance, InstanceError>;
}

/// Shared RNG construction so every family derives identically from seeds.
pub(crate) fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform sample in `[lo, hi)` (degenerate ranges return `lo`).
pub(crate) fn uniform_in(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Standard normal via Box–Muller (avoids a distribution dependency).
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Euclidean distance between two points.
pub(crate) fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Validates the common `(m, n)` sizing of a generator.
pub(crate) fn check_sizes(m: usize, n: usize) -> Result<(), InstanceError> {
    if m == 0 || n == 0 {
        return Err(InstanceError::InvalidGenerator {
            reason: format!("need at least one facility and one client, got m={m}, n={n}"),
        });
    }
    if m > u32::MAX as usize || n > u32::MAX as usize {
        return Err(InstanceError::InvalidGenerator {
            reason: "sizes exceed u32 index space".to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = rng_for(1);
        for _ in 0..1000 {
            let v = uniform_in(&mut rng, 2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
        assert_eq!(uniform_in(&mut rng, 3.0, 3.0), 3.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_for(2);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn dist_is_euclidean() {
        assert_eq!(dist((0.0, 0.0), (3.0, 4.0)), 5.0);
        assert_eq!(dist((1.0, 1.0), (1.0, 1.0)), 0.0);
    }

    #[test]
    fn check_sizes_rejects_empty() {
        assert!(check_sizes(0, 5).is_err());
        assert!(check_sizes(5, 0).is_err());
        assert!(check_sizes(1, 1).is_ok());
    }

    #[test]
    fn all_generators_are_seed_deterministic() {
        let gens: Vec<Box<dyn InstanceGenerator>> = vec![
            Box::new(UniformRandom::new(4, 9).unwrap()),
            Box::new(Euclidean::new(4, 9).unwrap()),
            Box::new(Clustered::new(2, 4, 9).unwrap()),
            Box::new(GridNetwork::new(5, 5, 3, 8).unwrap()),
            Box::new(LineCity::new(4, 9).unwrap()),
            Box::new(PowerLaw::new(4, 9, 100.0).unwrap()),
            Box::new(AdversarialGreedy::new(6).unwrap()),
            Box::new(CdnTrace::new(4, 9).unwrap()),
        ];
        for g in gens {
            let a = g.generate(17).unwrap();
            let b = g.generate(17).unwrap();
            let c = g.generate(18).unwrap();
            assert_eq!(a, b, "{} not deterministic", g.name());
            // Different seeds should (generically) differ; the adversarial
            // family is seed-independent by design.
            if g.name() != "adversarial" {
                assert_ne!(a, c, "{} ignores its seed", g.name());
            }
        }
    }
}
