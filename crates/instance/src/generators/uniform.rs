//! Dense instances with independently uniform costs (non-metric).

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;

use super::{check_sizes, rng_for, uniform_in, InstanceGenerator};

/// Dense non-metric instances: every connection cost is drawn independently
/// and uniformly, so the triangle inequality fails generically. This is the
/// canonical "hard" regime of the PODC 2005 paper (non-metric UFL is
/// Set-Cover-hard).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformRandom {
    m: usize,
    n: usize,
    connection: (f64, f64),
    opening: (f64, f64),
}

impl UniformRandom {
    /// Default ranges: connection costs in `[1, 100)`, opening costs in
    /// `[50, 500)`.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions.
    pub fn new(m: usize, n: usize) -> Result<Self, InstanceError> {
        Self::with_ranges(m, n, (1.0, 100.0), (50.0, 500.0))
    }

    /// Explicit `[lo, hi)` ranges for connection and opening costs.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or invalid ranges
    /// (negative, non-finite, or `hi < lo`).
    pub fn with_ranges(
        m: usize,
        n: usize,
        connection: (f64, f64),
        opening: (f64, f64),
    ) -> Result<Self, InstanceError> {
        check_sizes(m, n)?;
        for (lo, hi) in [connection, opening] {
            if !(lo.is_finite() && hi.is_finite()) || lo < 0.0 || hi < lo {
                return Err(InstanceError::InvalidGenerator {
                    reason: format!("invalid cost range [{lo}, {hi})"),
                });
            }
        }
        if connection.1 <= 0.0 && opening.1 <= 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: "at least one range must allow positive costs".to_owned(),
            });
        }
        Ok(UniformRandom { m, n, connection, opening })
    }
}

impl InstanceGenerator for UniformRandom {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let mut rng = rng_for(seed);
        let opening: Vec<Cost> = (0..self.m)
            .map(|_| Cost::new(uniform_in(&mut rng, self.opening.0, self.opening.1)))
            .collect::<Result<_, _>>()?;
        let costs: Vec<Vec<Cost>> = (0..self.n)
            .map(|_| {
                (0..self.m)
                    .map(|_| Cost::new(uniform_in(&mut rng, self.connection.0, self.connection.1)))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        Instance::from_dense(opening, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_completeness() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(3).unwrap();
        assert_eq!(inst.num_facilities(), 5);
        assert_eq!(inst.num_clients(), 12);
        assert!(inst.is_complete());
    }

    #[test]
    fn costs_respect_ranges() {
        let gen = UniformRandom::with_ranges(3, 7, (2.0, 4.0), (10.0, 20.0)).unwrap();
        let inst = gen.generate(9).unwrap();
        for i in inst.facilities() {
            let f = inst.opening_cost(i).value();
            assert!((10.0..20.0).contains(&f));
        }
        for j in inst.clients() {
            for (_, c) in inst.client_links(j) {
                assert!((2.0..4.0).contains(&c));
            }
        }
    }

    #[test]
    fn rejects_bad_ranges() {
        assert!(UniformRandom::with_ranges(2, 2, (5.0, 1.0), (1.0, 2.0)).is_err());
        assert!(UniformRandom::with_ranges(2, 2, (-1.0, 1.0), (1.0, 2.0)).is_err());
        assert!(UniformRandom::with_ranges(2, 2, (f64::NAN, 1.0), (1.0, 2.0)).is_err());
        assert!(UniformRandom::with_ranges(2, 2, (0.0, 0.0), (0.0, 0.0)).is_err());
    }

    #[test]
    fn rejects_empty_dimensions() {
        assert!(UniformRandom::new(0, 3).is_err());
        assert!(UniformRandom::new(3, 0).is_err());
    }
}
