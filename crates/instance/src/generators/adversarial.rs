//! The greedy-tight lower-bound family.

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;
use crate::instance::InstanceBuilder;

use super::{check_sizes, InstanceGenerator};

/// The classic instance family on which sequential greedy pays a factor of
/// `H_n` while the optimum opens a single facility:
///
/// * a **hub** facility with opening cost `F` serving every client at
///   connection cost 0 (`OPT = F`),
/// * `n` **decoy** facilities, decoy `k` serving only client `k` at cost 0
///   with opening cost `F·(1−ε)/(n−k+1)`.
///
/// Greedy's best star ratio is always the next decoy (by the `(1−ε)`
/// margin), so it opens all `n` decoys for total `F·(1−ε)·H_n`. This family
/// certifies that the `log(m+n)` factor in the distributed bound is not an
/// analysis artifact, and exercises zero connection costs.
///
/// The construction is deterministic; `generate` ignores its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialGreedy {
    n: usize,
    hub_cost: f64,
    epsilon: f64,
}

impl AdversarialGreedy {
    /// `n` clients, hub cost `F = 100`, margin `ε = 0.01`.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for `n == 0`.
    pub fn new(n: usize) -> Result<Self, InstanceError> {
        Self::with_parameters(n, 100.0, 0.01)
    }

    /// Explicit hub cost and greedy-luring margin.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for `n == 0`, non-positive hub cost, or
    /// a margin outside `(0, 1)`.
    pub fn with_parameters(n: usize, hub_cost: f64, epsilon: f64) -> Result<Self, InstanceError> {
        check_sizes(1, n)?;
        if !hub_cost.is_finite() || hub_cost <= 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("hub cost must be positive, got {hub_cost}"),
            });
        }
        if !epsilon.is_finite() || !(0.0..1.0).contains(&epsilon) || epsilon == 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("margin must lie in (0, 1), got {epsilon}"),
            });
        }
        Ok(AdversarialGreedy { n, hub_cost, epsilon })
    }

    /// The cost of the intended optimum (opening only the hub).
    pub fn optimal_cost(&self) -> f64 {
        self.hub_cost
    }

    /// The cost greedy is lured into: `F·(1−ε)·H_n`.
    pub fn greedy_cost(&self) -> f64 {
        let h: f64 = (1..=self.n).map(|k| 1.0 / k as f64).sum();
        self.hub_cost * (1.0 - self.epsilon) * h
    }
}

impl InstanceGenerator for AdversarialGreedy {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    fn generate(&self, _seed: u64) -> Result<Instance, InstanceError> {
        let mut b = InstanceBuilder::new();
        let hub = b.add_facility(Cost::new(self.hub_cost)?);
        let decoys: Vec<_> = (1..=self.n)
            .map(|k| {
                let f = self.hub_cost * (1.0 - self.epsilon) / (self.n - k + 1) as f64;
                Cost::new(f).map(|c| b.add_facility(c))
            })
            .collect::<Result<_, _>>()?;
        for &decoy in &decoys {
            let j = b.add_client();
            b.link(j, hub, Cost::ZERO)?;
            b.link(j, decoy, Cost::ZERO)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{ClientId, FacilityId};
    use crate::Solution;

    #[test]
    fn structure() {
        let gen = AdversarialGreedy::new(8).unwrap();
        let inst = gen.generate(0).unwrap();
        assert_eq!(inst.num_facilities(), 9);
        assert_eq!(inst.num_clients(), 8);
        assert_eq!(inst.num_links(), 16);
    }

    #[test]
    fn hub_solution_costs_optimal() {
        let gen = AdversarialGreedy::new(6).unwrap();
        let inst = gen.generate(0).unwrap();
        let hub = FacilityId::new(0);
        let sol = Solution::from_assignment(&inst, vec![hub; 6]).unwrap();
        assert!((sol.cost(&inst).value() - gen.optimal_cost()).abs() < 1e-9);
    }

    #[test]
    fn decoy_solution_costs_h_n_factor() {
        let gen = AdversarialGreedy::new(6).unwrap();
        let inst = gen.generate(0).unwrap();
        let assignment: Vec<FacilityId> = (0..6).map(|k| FacilityId::new((k + 1) as u32)).collect();
        let sol = Solution::from_assignment(&inst, assignment).unwrap();
        assert!((sol.cost(&inst).value() - gen.greedy_cost()).abs() < 1e-9);
        // Sanity: the gap really is ~H_6 ≈ 2.45.
        let gap = sol.cost(&inst).value() / gen.optimal_cost();
        assert!(gap > 2.0, "gap {gap}");
        let _ = ClientId::new(0);
    }

    #[test]
    fn decoy_ratio_beats_hub_at_every_greedy_step() {
        // Greedy's ratio for decoy k (1 client) must undercut the hub's
        // ratio over the remaining n-k+1 clients.
        let gen = AdversarialGreedy::new(10).unwrap();
        for k in 1..=10usize {
            let remaining = 10 - k + 1;
            let decoy_ratio = gen.hub_cost * (1.0 - gen.epsilon) / remaining as f64;
            let hub_ratio = gen.hub_cost / remaining as f64;
            assert!(decoy_ratio < hub_ratio);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(AdversarialGreedy::new(0).is_err());
        assert!(AdversarialGreedy::with_parameters(3, 0.0, 0.1).is_err());
        assert!(AdversarialGreedy::with_parameters(3, 10.0, 0.0).is_err());
        assert!(AdversarialGreedy::with_parameters(3, 10.0, 1.0).is_err());
    }
}
