//! Instances with exactly pinned coefficient spread `ρ`.

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;

use super::{check_sizes, rng_for, uniform_in, InstanceGenerator};

/// Non-metric instances whose coefficient spread is exactly the requested
/// `ρ`: every cost is `floor · ρ^U` with `U ~ Uniform[0, 1]` (log-uniform),
/// and one coefficient is pinned to each extreme so the realized spread
/// equals `ρ` rather than merely approaching it. Experiment E3 sweeps this
/// family to measure the `ρ`-dependence of the trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLaw {
    m: usize,
    n: usize,
    rho: f64,
    floor: f64,
}

impl PowerLaw {
    /// Spread `rho ≥ 1` with unit floor.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or `rho < 1`.
    pub fn new(m: usize, n: usize, rho: f64) -> Result<Self, InstanceError> {
        Self::with_floor(m, n, rho, 1.0)
    }

    /// Explicit smallest coefficient.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions, `rho < 1`, or a
    /// non-positive floor.
    pub fn with_floor(m: usize, n: usize, rho: f64, floor: f64) -> Result<Self, InstanceError> {
        check_sizes(m, n)?;
        if !rho.is_finite() || rho < 1.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("spread must be at least 1, got {rho}"),
            });
        }
        if !floor.is_finite() || floor <= 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("floor must be positive, got {floor}"),
            });
        }
        Ok(PowerLaw { m, n, rho, floor })
    }

    /// The configured spread.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl InstanceGenerator for PowerLaw {
    fn name(&self) -> &'static str {
        "powerlaw"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let mut rng = rng_for(seed);
        let draw =
            |rng: &mut rand::rngs::StdRng| self.floor * self.rho.powf(uniform_in(rng, 0.0, 1.0));
        let opening: Vec<Cost> =
            (0..self.m).map(|_| Cost::new(draw(&mut rng))).collect::<Result<_, _>>()?;
        let mut costs: Vec<Vec<Cost>> = (0..self.n)
            .map(|_| (0..self.m).map(|_| Cost::new(draw(&mut rng))).collect::<Result<_, _>>())
            .collect::<Result<Vec<Vec<Cost>>, _>>()?;
        // Pin the extremes so the realized spread is exactly rho.
        costs[0][0] = Cost::new(self.floor)?;
        let last_row = self.n - 1;
        let last_col = self.m - 1;
        if self.n > 1 || self.m > 1 {
            costs[last_row][last_col] = Cost::new(self.floor * self.rho)?;
        } else {
            // 1x1 instances: put the max on the opening cost instead.
            return Instance::from_dense(vec![Cost::new(self.floor * self.rho)?], costs);
        }
        Instance::from_dense(opening, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread;

    #[test]
    fn spread_is_exact() {
        for rho in [1.0, 10.0, 1e3, 1e6] {
            let inst = PowerLaw::new(5, 9, rho).unwrap().generate(3).unwrap();
            let measured = spread::coefficient_spread(&inst);
            assert!(
                (measured / rho - 1.0).abs() < 1e-9,
                "requested rho {rho}, measured {measured}"
            );
        }
    }

    #[test]
    fn one_by_one_instance() {
        let inst = PowerLaw::new(1, 1, 50.0).unwrap().generate(0).unwrap();
        let measured = spread::coefficient_spread(&inst);
        assert!((measured / 50.0 - 1.0).abs() < 1e-9, "measured {measured}");
    }

    #[test]
    fn floor_scales_all_costs() {
        let inst = PowerLaw::with_floor(3, 4, 10.0, 5.0).unwrap().generate(1).unwrap();
        for c in inst.coefficients() {
            assert!(c.value() >= 5.0 - 1e-12);
            assert!(c.value() <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PowerLaw::new(2, 2, 0.5).is_err());
        assert!(PowerLaw::new(2, 2, f64::NAN).is_err());
        assert!(PowerLaw::with_floor(2, 2, 10.0, 0.0).is_err());
    }
}
