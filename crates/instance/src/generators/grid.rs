//! Sparse graph-metric instances on a grid network.

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;
use crate::instance::InstanceBuilder;

use super::{check_sizes, rng_for, uniform_in, InstanceGenerator};

/// Sparse instances whose connection costs are hop distances in a
/// `rows × cols` grid network — the "sensor network / multi-hop radio"
/// shape distributed facility location is usually motivated by. A client is
/// linked only to facilities within `radius` hops (plus its globally
/// nearest facility, so feasibility is guaranteed), making the CONGEST
/// communication graph genuinely sparse.
#[derive(Debug, Clone, PartialEq)]
pub struct GridNetwork {
    rows: usize,
    cols: usize,
    m: usize,
    n: usize,
    radius: usize,
}

impl GridNetwork {
    /// Default radius: a quarter of the grid perimeter dimension.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or more facilities
    /// than grid cells.
    pub fn new(rows: usize, cols: usize, m: usize, n: usize) -> Result<Self, InstanceError> {
        Self::with_radius(rows, cols, m, n, (rows + cols).div_ceil(4))
    }

    /// Explicit link radius in hops.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions, more facilities
    /// than grid cells, or a zero radius.
    pub fn with_radius(
        rows: usize,
        cols: usize,
        m: usize,
        n: usize,
        radius: usize,
    ) -> Result<Self, InstanceError> {
        check_sizes(m, n)?;
        if rows == 0 || cols == 0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("grid dimensions must be positive, got {rows}x{cols}"),
            });
        }
        if m > rows * cols {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("cannot place {m} facilities on a {rows}x{cols} grid"),
            });
        }
        if radius == 0 {
            return Err(InstanceError::InvalidGenerator {
                reason: "radius must be at least one hop".to_owned(),
            });
        }
        Ok(GridNetwork { rows, cols, m, n, radius })
    }

    /// Hop distance between two cells (L1 distance on the grid).
    fn hops(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = (a / self.cols, a % self.cols);
        let (br, bc) = (b / self.cols, b % self.cols);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

impl InstanceGenerator for GridNetwork {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let mut rng = rng_for(seed);
        let cells = self.rows * self.cols;

        // Facilities occupy distinct cells (partial Fisher-Yates).
        let mut pool: Vec<usize> = (0..cells).collect();
        for k in 0..self.m {
            let pick =
                k + (uniform_in(&mut rng, 0.0, (cells - k) as f64) as usize).min(cells - k - 1);
            pool.swap(k, pick);
        }
        let facility_cells: Vec<usize> = pool[..self.m].to_vec();

        // Clients are placed anywhere (cells may repeat).
        let client_cells: Vec<usize> = (0..self.n)
            .map(|_| (uniform_in(&mut rng, 0.0, cells as f64) as usize).min(cells - 1))
            .collect();

        let mut builder = InstanceBuilder::new();
        let scale = (self.rows + self.cols) as f64;
        let fids: Vec<_> = (0..self.m)
            .map(|_| {
                let f = uniform_in(&mut rng, scale / 2.0, 2.0 * scale);
                Cost::new(f).map(|c| builder.add_facility(c))
            })
            .collect::<Result<_, _>>()?;

        for &cell in &client_cells {
            let j = builder.add_client();
            let mut linked = false;
            let mut nearest: Option<(usize, usize)> = None; // (facility idx, hops)
            for (fi, &fcell) in facility_cells.iter().enumerate() {
                let h = self.hops(cell, fcell);
                if nearest.is_none_or(|(_, best)| h < best) {
                    nearest = Some((fi, h));
                }
                if h <= self.radius {
                    // Hop cost 1.0 per hop; co-located pairs cost one hop's
                    // worth of local delivery rather than zero.
                    builder.link(j, fids[fi], Cost::new(h.max(1) as f64)?)?;
                    linked = true;
                }
            }
            if !linked {
                let (fi, h) = nearest.expect("at least one facility exists");
                builder.link(j, fids[fi], Cost::new(h.max(1) as f64)?)?;
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_sparsity() {
        let gen = GridNetwork::with_radius(10, 10, 8, 30, 3).unwrap();
        let inst = gen.generate(4).unwrap();
        assert_eq!(inst.num_facilities(), 8);
        assert_eq!(inst.num_clients(), 30);
        // Radius-3 neighborhoods are much smaller than the grid, so the
        // instance must be sparse.
        assert!(inst.num_links() < 8 * 30, "instance unexpectedly dense");
        // And every client still has a link (guaranteed fallback).
        for j in inst.clients() {
            assert!(!inst.client_links(j).is_empty());
        }
    }

    #[test]
    fn link_costs_are_hop_counts() {
        let inst = GridNetwork::new(6, 6, 4, 12).unwrap().generate(9).unwrap();
        for j in inst.clients() {
            for (_, c) in inst.client_links(j) {
                let v = c;
                assert!(v >= 1.0 && v.fract() == 0.0, "cost {v} is not a hop count");
            }
        }
    }

    #[test]
    fn facilities_occupy_distinct_cells() {
        // Indirect check: with m == cells, generation still succeeds, which
        // requires all cells distinct.
        let gen = GridNetwork::with_radius(3, 3, 9, 5, 2).unwrap();
        let inst = gen.generate(0).unwrap();
        assert_eq!(inst.num_facilities(), 9);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(GridNetwork::new(0, 5, 1, 1).is_err());
        assert!(GridNetwork::new(2, 2, 5, 1).is_err());
        assert!(GridNetwork::with_radius(5, 5, 2, 2, 0).is_err());
    }

    #[test]
    fn hops_is_l1() {
        let g = GridNetwork::new(5, 7, 1, 1).unwrap();
        assert_eq!(g.hops(0, 0), 0);
        // Cell 0 = (0,0); cell 2*7+3 = (2,3).
        assert_eq!(g.hops(0, 2 * 7 + 3), 5);
    }
}
