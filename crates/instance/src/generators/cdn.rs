//! Synthetic CDN cache-placement workload (production-trace substitute).

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;

use super::{check_sizes, dist, rng_for, uniform_in, InstanceGenerator};

/// A synthetic content-delivery workload, standing in for the production
/// demand traces a systems evaluation would use (see DESIGN.md §5):
///
/// * clients are demand regions at random plane coordinates whose request
///   volumes follow a Zipf law (exponent `zipf_s`, heaviest region first),
/// * facilities are candidate cache sites (random coordinates) whose
///   opening cost models site build-out, uniform in `[base, 3·base)`,
/// * the connection cost of region `j` to site `i` is
///   `latency(distance) · volume_j` — placing a cache near heavy regions
///   pays, exactly the economics of real CDN placement.
///
/// Demand weighting makes the instance *non-metric* in general (a heavy and
/// a light region at the same location have different connection costs), so
/// this family exercises the paper's non-metric regime with realistic
/// structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CdnTrace {
    sites: usize,
    regions: usize,
    side: f64,
    zipf_s: f64,
    base_cost: f64,
}

impl CdnTrace {
    /// Defaults: 1000×1000 plane, Zipf exponent 1.0, base site cost 500.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions.
    pub fn new(sites: usize, regions: usize) -> Result<Self, InstanceError> {
        Self::with_parameters(sites, regions, 1000.0, 1.0, 500.0)
    }

    /// Full parameter control.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or non-positive
    /// geometry/cost parameters.
    pub fn with_parameters(
        sites: usize,
        regions: usize,
        side: f64,
        zipf_s: f64,
        base_cost: f64,
    ) -> Result<Self, InstanceError> {
        check_sizes(sites, regions)?;
        if !(side.is_finite() && zipf_s.is_finite() && base_cost.is_finite())
            || side <= 0.0
            || zipf_s < 0.0
            || base_cost <= 0.0
        {
            return Err(InstanceError::InvalidGenerator {
                reason: format!(
                    "side ({side}), zipf exponent ({zipf_s}) and base cost ({base_cost}) must be positive"
                ),
            });
        }
        Ok(CdnTrace { sites, regions, side, zipf_s, base_cost })
    }

    /// The Zipf demand volume of region `rank` (0 = heaviest), normalized
    /// so volumes sum to `regions`.
    pub fn demand_volume(&self, rank: usize) -> f64 {
        let weight = |r: usize| 1.0 / ((r + 1) as f64).powf(self.zipf_s);
        let total: f64 = (0..self.regions).map(weight).sum();
        weight(rank) * self.regions as f64 / total
    }
}

impl InstanceGenerator for CdnTrace {
    fn name(&self) -> &'static str {
        "cdn"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let mut rng = rng_for(seed);
        let point = |rng: &mut rand::rngs::StdRng| {
            (uniform_in(rng, 0.0, self.side), uniform_in(rng, 0.0, self.side))
        };
        let site_pts: Vec<(f64, f64)> = (0..self.sites).map(|_| point(&mut rng)).collect();
        let region_pts: Vec<(f64, f64)> = (0..self.regions).map(|_| point(&mut rng)).collect();
        let opening: Vec<Cost> = (0..self.sites)
            .map(|_| Cost::new(uniform_in(&mut rng, self.base_cost, 3.0 * self.base_cost)))
            .collect::<Result<_, _>>()?;
        // Latency model: propagation delay proportional to distance plus a
        // fixed last-mile term, so co-located pairs are cheap but never free.
        let latency = |d: f64| 1.0 + d / 10.0;
        let costs: Vec<Vec<Cost>> = region_pts
            .iter()
            .enumerate()
            .map(|(rank, &p)| {
                let volume = self.demand_volume(rank);
                site_pts
                    .iter()
                    .map(|&q| Cost::new(latency(dist(p, q)) * volume))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        Instance::from_dense(opening, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let inst = CdnTrace::new(6, 20).unwrap().generate(1).unwrap();
        assert_eq!(inst.num_facilities(), 6);
        assert_eq!(inst.num_clients(), 20);
        assert!(inst.is_complete());
    }

    #[test]
    fn zipf_volumes_are_skewed_and_normalized() {
        let gen = CdnTrace::new(3, 50).unwrap();
        let volumes: Vec<f64> = (0..50).map(|r| gen.demand_volume(r)).collect();
        // Heaviest region dominates the lightest by about 50x at s=1.
        assert!(volumes[0] / volumes[49] > 40.0);
        // Monotone decreasing.
        assert!(volumes.windows(2).all(|w| w[0] >= w[1]));
        let total: f64 = volumes.iter().sum();
        assert!((total - 50.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_regions_have_proportionally_larger_costs() {
        let gen = CdnTrace::new(5, 30).unwrap();
        let inst = gen.generate(7).unwrap();
        // Region 0 (heaviest) should have a larger average link cost than
        // region 29 (lightest) by roughly the volume ratio.
        let avg = |j: u32| {
            let links = inst.client_links(crate::ClientId::new(j));
            links.costs.iter().sum::<f64>() / links.len() as f64
        };
        let ratio = avg(0) / avg(29);
        let volume_ratio = gen.demand_volume(0) / gen.demand_volume(29);
        assert!(ratio > volume_ratio * 0.2, "cost ratio {ratio} vs volume ratio {volume_ratio}");
    }

    #[test]
    fn zero_zipf_exponent_means_uniform_demand() {
        let gen = CdnTrace::with_parameters(3, 10, 100.0, 0.0, 50.0).unwrap();
        for r in 0..10 {
            assert!((gen.demand_volume(r) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(CdnTrace::with_parameters(0, 5, 1.0, 1.0, 1.0).is_err());
        assert!(CdnTrace::with_parameters(3, 5, 0.0, 1.0, 1.0).is_err());
        assert!(CdnTrace::with_parameters(3, 5, 1.0, -1.0, 1.0).is_err());
        assert!(CdnTrace::with_parameters(3, 5, 1.0, 1.0, 0.0).is_err());
    }
}
