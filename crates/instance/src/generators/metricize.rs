//! Metric closure of an arbitrary generator family.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::{Instance, InstanceBuilder};

use super::InstanceGenerator;

/// Wraps any generator and replaces every connection cost with the
/// shortest-path distance between the two endpoints in the bipartite link
/// graph (edges weighted by the original costs), keeping opening costs and
/// the sparsity pattern unchanged.
///
/// Shortest-path distances are a graph metric, so the produced instances
/// satisfy the bipartite four-point condition exactly (up to f64 rounding)
/// — this turns *any* family, including the deliberately non-metric ones,
/// into its closest metric relative. The portfolio benchmarks use it to
/// compare solvers on metric/non-metric twins of the same random draw.
///
/// ```
/// use distfl_instance::generators::{InstanceGenerator, Metricized, UniformRandom};
/// use distfl_instance::metric;
///
/// # fn main() -> Result<(), distfl_instance::InstanceError> {
/// let twin = Metricized::new(UniformRandom::new(5, 20)?).generate(7)?;
/// assert!(metric::relative_defect(&twin) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Metricized<G> {
    inner: G,
}

impl<G: InstanceGenerator> Metricized<G> {
    /// Wraps `inner`; every generated instance is passed through
    /// [`metric_closure`].
    pub fn new(inner: G) -> Self {
        Metricized { inner }
    }
}

impl<G: InstanceGenerator> InstanceGenerator for Metricized<G> {
    fn name(&self) -> &'static str {
        "metricized"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        metric_closure(&self.inner.generate(seed)?)
    }
}

/// Rebuilds `instance` with every connection cost replaced by the
/// shortest-path distance between its endpoints in the bipartite link
/// graph. Opening costs and the link pattern are unchanged; every new cost
/// is at most the original (the direct edge is itself a path).
///
/// # Errors
///
/// Propagates builder errors (cannot occur for a valid input instance;
/// kept for honesty).
pub fn metric_closure(instance: &Instance) -> Result<Instance, InstanceError> {
    let m = instance.num_facilities();
    let n = instance.num_clients();
    // Bipartite adjacency over node ids: facilities 0..m, clients m..m+n.
    let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m + n];
    for j in instance.clients() {
        let links = instance.client_links(j);
        for (i, c) in links.ids.iter().zip(links.costs.iter()) {
            adjacency[*i as usize].push((m + j.index(), *c));
            adjacency[m + j.index()].push((*i as usize, *c));
        }
    }

    let mut b = InstanceBuilder::new();
    let fids: Vec<_> =
        instance.facilities().map(|i| b.add_facility(instance.opening_cost(i))).collect();
    // One Dijkstra per facility gives the distances to every client it can
    // reach; the kept links are exactly the original ones.
    let mut dist = vec![f64::INFINITY; m + n];
    let mut closed: Vec<Vec<f64>> = Vec::with_capacity(m);
    for i in 0..m {
        dist.iter_mut().for_each(|d| *d = f64::INFINITY);
        let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::new();
        dist[i] = 0.0;
        heap.push(Reverse((OrderedF64(0.0), i)));
        while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &adjacency[u] {
                let candidate = d + w;
                if candidate < dist[v] {
                    dist[v] = candidate;
                    heap.push(Reverse((OrderedF64(candidate), v)));
                }
            }
        }
        closed.push(dist[m..].to_vec());
    }
    for j in instance.clients() {
        let c = b.add_client();
        for (i, _) in instance.client_links(j).iter() {
            let d = closed[i as usize][j.index()];
            debug_assert!(d.is_finite(), "a linked pair is connected by the direct edge");
            b.link(c, fids[i as usize], Cost::new(d)?)?;
        }
    }
    b.build()
}

/// Total order on the non-NaN distances the heap holds.
#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridNetwork, PowerLaw, UniformRandom};
    use crate::metric;

    #[test]
    fn closure_is_metric_and_never_raises_costs() {
        let raw = UniformRandom::new(6, 18).unwrap().generate(3).unwrap();
        let closed = metric_closure(&raw).unwrap();
        assert_eq!(closed.num_facilities(), raw.num_facilities());
        assert_eq!(closed.num_clients(), raw.num_clients());
        assert_eq!(closed.num_links(), raw.num_links());
        assert!(metric::relative_defect(&closed) < 1e-12);
        for j in raw.clients() {
            for ((i, old), (i2, new)) in
                raw.client_links(j).iter().zip(closed.client_links(j).iter())
            {
                assert_eq!(i, i2);
                assert!(new <= old, "closure raised a cost: {new} > {old}");
            }
        }
    }

    #[test]
    fn sparse_patterns_are_preserved() {
        let raw = GridNetwork::new(6, 6, 4, 14).unwrap().generate(2).unwrap();
        let closed = metric_closure(&raw).unwrap();
        for j in raw.clients() {
            assert_eq!(raw.client_links(j).ids, closed.client_links(j).ids);
        }
        assert!(metric::relative_defect(&closed) < 1e-12);
    }

    #[test]
    fn generator_wrapper_is_deterministic() {
        let g = Metricized::new(PowerLaw::new(4, 10, 1e4).unwrap());
        assert_eq!(g.name(), "metricized");
        assert_eq!(g.generate(9).unwrap(), g.generate(9).unwrap());
        assert_ne!(g.generate(9).unwrap(), g.generate(10).unwrap());
    }
}
