//! Line-metric instances with exposed layout (exact solvable at scale).

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::instance::Instance;

use super::{check_sizes, rng_for, uniform_in, InstanceGenerator};

/// The geometric layout behind a [`LineCity`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct LineLayout {
    /// Facility positions along the line.
    pub facility_pos: Vec<f64>,
    /// Facility opening costs.
    pub opening: Vec<f64>,
    /// Client positions along the line.
    pub client_pos: Vec<f64>,
}

/// Metric instances on a line ("main street"): facilities and clients at
/// uniform positions in `[0, length)`, connection cost `|p − q|`, opening
/// costs uniform in `[length/20, length/4)`.
///
/// The layout is exposed via [`LineCity::layout`], so the exact
/// line-metric DP (`distfl_lp::line`) can certify the true optimum at
/// sizes far beyond the subset branch-and-bound — this is the family the
/// experiments use for exact ratios on *large* instances.
#[derive(Debug, Clone, PartialEq)]
pub struct LineCity {
    m: usize,
    n: usize,
    length: f64,
}

impl LineCity {
    /// Default street length 1000.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions.
    pub fn new(m: usize, n: usize) -> Result<Self, InstanceError> {
        Self::with_length(m, n, 1000.0)
    }

    /// Explicit street length.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for empty dimensions or a non-positive
    /// length.
    pub fn with_length(m: usize, n: usize, length: f64) -> Result<Self, InstanceError> {
        check_sizes(m, n)?;
        if !length.is_finite() || length <= 0.0 {
            return Err(InstanceError::InvalidGenerator {
                reason: format!("length must be positive, got {length}"),
            });
        }
        Ok(LineCity { m, n, length })
    }

    /// The deterministic layout for `seed` (same randomness as
    /// [`InstanceGenerator::generate`]).
    pub fn layout(&self, seed: u64) -> LineLayout {
        let mut rng = rng_for(seed);
        let facility_pos: Vec<f64> =
            (0..self.m).map(|_| uniform_in(&mut rng, 0.0, self.length)).collect();
        let client_pos: Vec<f64> =
            (0..self.n).map(|_| uniform_in(&mut rng, 0.0, self.length)).collect();
        let opening: Vec<f64> = (0..self.m)
            .map(|_| uniform_in(&mut rng, self.length / 20.0, self.length / 4.0))
            .collect();
        LineLayout { facility_pos, opening, client_pos }
    }
}

impl InstanceGenerator for LineCity {
    fn name(&self) -> &'static str {
        "line"
    }

    fn generate(&self, seed: u64) -> Result<Instance, InstanceError> {
        let layout = self.layout(seed);
        let opening: Vec<Cost> =
            layout.opening.iter().map(|&f| Cost::new(f)).collect::<Result<_, _>>()?;
        let costs: Vec<Vec<Cost>> = layout
            .client_pos
            .iter()
            .map(|&q| {
                layout
                    .facility_pos
                    .iter()
                    .map(|&p| Cost::new((p - q).abs()))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        Instance::from_dense(opening, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric;
    use crate::{ClientId, FacilityId};

    #[test]
    fn instance_matches_its_layout() {
        let gen = LineCity::new(6, 20).unwrap();
        let layout = gen.layout(5);
        let inst = gen.generate(5).unwrap();
        for (j, &q) in layout.client_pos.iter().enumerate() {
            for (i, &p) in layout.facility_pos.iter().enumerate() {
                let c = inst
                    .connection_cost(ClientId::new(j as u32), FacilityId::new(i as u32))
                    .unwrap()
                    .value();
                assert!((c - (p - q).abs()).abs() < 1e-12);
            }
        }
        for (i, &f) in layout.opening.iter().enumerate() {
            assert_eq!(inst.opening_cost(FacilityId::new(i as u32)).value(), f);
        }
    }

    #[test]
    fn line_instances_are_metric() {
        let inst = LineCity::new(5, 12).unwrap().generate(3).unwrap();
        assert!(metric::is_metric(&inst, 1e-9));
    }

    #[test]
    fn rejects_invalid_length() {
        assert!(LineCity::with_length(2, 2, 0.0).is_err());
        assert!(LineCity::with_length(2, 2, f64::NAN).is_err());
    }
}
