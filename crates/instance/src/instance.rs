//! The uncapacitated facility-location instance type.

pub mod delta;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cost::Cost;
use crate::error::InstanceError;
use crate::kernels;

/// Identifier of a facility within an [`Instance`] (dense index `0..m`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FacilityId(u32);

impl FacilityId {
    /// Creates a facility id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        FacilityId(index)
    }

    /// The dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for FacilityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FacilityId({})", self.0)
    }
}

impl fmt::Display for FacilityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a client within an [`Instance`] (dense index `0..n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ClientId(index)
    }

    /// The dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientId({})", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One CSR adjacency row in structure-of-arrays form: the opposite-side
/// ids and the link costs as two parallel contiguous slices.
///
/// `ids[k]` and `costs[k]` describe the same link; both slices always have
/// equal length, and `ids` is sorted ascending (the CSR row invariant).
/// Splitting the lanes lets cost-only scans — which is what every solver
/// hot path does — run over pure `f64` memory without dragging ids
/// through cache, and makes the rows directly consumable by the chunked
/// [`crate::kernels`]. Every cost was validated by [`Cost::new`] at
/// construction, so the lane is finite, non-negative, and free of `NaN`
/// and `-0.0`; wrap values back up with [`Cost::from_validated`] when a
/// typed cost is needed.
#[derive(Clone, Copy, Debug)]
pub struct LinkSlice<'a> {
    /// Opposite-side dense ids, sorted ascending.
    pub ids: &'a [u32],
    /// Link costs, parallel to `ids`.
    pub costs: &'a [f64],
}

impl<'a> LinkSlice<'a> {
    /// Number of links in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the row is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `k`-th link as an `(id, cost)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn get(&self, k: usize) -> (u32, f64) {
        (self.ids[k], self.costs[k])
    }

    /// Iterates over the row as `(id, cost)` pairs.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.ids.iter().copied().zip(self.costs.iter().copied())
    }
}

impl<'a> IntoIterator for LinkSlice<'a> {
    type Item = (u32, f64);
    type IntoIter = std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'a, u32>>,
        std::iter::Copied<std::slice::Iter<'a, f64>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied().zip(self.costs.iter().copied())
    }
}

/// An uncapacitated facility-location instance.
///
/// Stores `m` facility opening costs and a sparse bipartite link structure:
/// client `j` may connect to facility `i` at cost `c_ij` only if the link
/// `(j, i)` exists. Links double as the communication edges of the CONGEST
/// network the distributed algorithms run on.
///
/// Invariants (enforced at construction):
///
/// * at least one facility and one client,
/// * every client has at least one link (otherwise no feasible solution),
/// * no duplicate links,
/// * at least one strictly positive coefficient.
///
/// Build instances with [`InstanceBuilder`], [`Instance::from_dense`], a
/// generator from [`crate::generators`], or parse one with
/// [`crate::textio`].
///
/// # Storage
///
/// The link structure is stored in CSR (compressed sparse row) form with a
/// structure-of-arrays split: per direction, one contiguous `u32` id lane
/// and one contiguous `f64` cost lane behind a shared u32 offset table.
/// [`Instance::client_links`]/[`Instance::facility_links`] hand out a row
/// as a [`LinkSlice`] pair of parallel slices, so cost-only inner loops
/// (star-ratio scans, repricing sweeps, linear-form passes) touch pure
/// `f64` memory and autovectorize via [`crate::kernels`].
/// [`Instance::cheapest_link`] and [`Instance::max_degree`] are
/// precomputed at build time and are `O(1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    opening: Vec<Cost>,
    /// CSR offsets into the client-major lanes, length `n + 1`.
    client_offsets: Vec<u32>,
    /// Client-major facility-id lane, sorted by facility id within each
    /// client row.
    client_link_ids: Vec<u32>,
    /// Client-major cost lane, parallel to `client_link_ids`.
    client_link_costs: Vec<f64>,
    /// CSR offsets into the facility-major lanes, length `m + 1`.
    facility_offsets: Vec<u32>,
    /// Facility-major client-id lane, sorted by client id within each
    /// facility row.
    facility_link_ids: Vec<u32>,
    /// Facility-major cost lane, parallel to `facility_link_ids`.
    facility_link_costs: Vec<f64>,
    /// Per-client cheapest link (ties broken by lowest facility id).
    cheapest: Vec<(FacilityId, Cost)>,
    /// Maximum degree over all clients and facilities.
    max_degree: u32,
}

impl Instance {
    /// Builds a complete-bipartite (dense) instance from an opening-cost
    /// vector and a `[client][facility]` connection-cost matrix.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the matrix is ragged, any dimension
    /// is empty, or all coefficients are zero.
    pub fn from_dense(opening: Vec<Cost>, costs: Vec<Vec<Cost>>) -> Result<Self, InstanceError> {
        let mut builder = InstanceBuilder::new();
        let fids: Vec<FacilityId> = opening.into_iter().map(|f| builder.add_facility(f)).collect();
        if fids.is_empty() {
            return Err(InstanceError::NoFacilities);
        }
        for row in costs {
            if row.len() != fids.len() {
                return Err(InstanceError::FacilityOutOfRange {
                    facility: row.len().max(fids.len()) - 1,
                    num_facilities: fids.len(),
                });
            }
            let c = builder.add_client();
            for (i, cost) in row.into_iter().enumerate() {
                builder.link(c, fids[i], cost)?;
            }
        }
        builder.build()
    }

    /// Number of facilities `m`.
    #[inline]
    pub fn num_facilities(&self) -> usize {
        self.opening.len()
    }

    /// Number of clients `n`.
    #[inline]
    pub fn num_clients(&self) -> usize {
        self.client_offsets.len() - 1
    }

    /// Total number of links `|E|`.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.client_link_ids.len()
    }

    /// Whether every client/facility pair is linked.
    pub fn is_complete(&self) -> bool {
        self.num_links() == self.num_facilities() * self.num_clients()
    }

    /// The opening cost of facility `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn opening_cost(&self, i: FacilityId) -> Cost {
        self.opening[i.index()]
    }

    /// The connection cost of the link `(j, i)`, or `None` if absent.
    pub fn connection_cost(&self, j: ClientId, i: FacilityId) -> Option<Cost> {
        let links = self.client_links(j);
        links.ids.binary_search(&i.raw()).ok().map(|pos| Cost::from_validated(links.costs[pos]))
    }

    /// The links of client `j` as parallel facility-id/cost lanes, sorted
    /// by facility id.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn client_links(&self, j: ClientId) -> LinkSlice<'_> {
        let lo = self.client_offsets[j.index()] as usize;
        let hi = self.client_offsets[j.index() + 1] as usize;
        LinkSlice { ids: &self.client_link_ids[lo..hi], costs: &self.client_link_costs[lo..hi] }
    }

    /// The links of facility `i` as parallel client-id/cost lanes, sorted
    /// by client id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn facility_links(&self, i: FacilityId) -> LinkSlice<'_> {
        let lo = self.facility_offsets[i.index()] as usize;
        let hi = self.facility_offsets[i.index() + 1] as usize;
        LinkSlice { ids: &self.facility_link_ids[lo..hi], costs: &self.facility_link_costs[lo..hi] }
    }

    /// The cheapest link of client `j` (ties broken by lowest facility id);
    /// precomputed at build time, `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range (every in-range client has a link by
    /// the instance invariant).
    #[inline]
    pub fn cheapest_link(&self, j: ClientId) -> (FacilityId, Cost) {
        self.cheapest[j.index()]
    }

    /// Iterates over all facility ids.
    pub fn facilities(&self) -> impl Iterator<Item = FacilityId> + '_ {
        (0..self.num_facilities() as u32).map(FacilityId::new)
    }

    /// Iterates over all client ids.
    pub fn clients(&self) -> impl Iterator<Item = ClientId> + '_ {
        (0..self.num_clients() as u32).map(ClientId::new)
    }

    /// Sum of all opening costs.
    pub fn total_opening_cost(&self) -> Cost {
        self.opening.iter().copied().sum()
    }

    /// Iterates over every coefficient of the instance (all opening costs,
    /// then all connection costs).
    pub fn coefficients(&self) -> impl Iterator<Item = Cost> + '_ {
        self.opening
            .iter()
            .copied()
            .chain(self.client_link_costs.iter().map(|&c| Cost::from_validated(c)))
    }

    /// Maximum number of links at any single client or facility (the degree
    /// bound of the CONGEST communication graph); precomputed at build
    /// time, `O(1)`.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }
}

/// Incremental constructor for [`Instance`].
///
/// ```
/// use distfl_instance::{Cost, InstanceBuilder};
///
/// # fn main() -> Result<(), distfl_instance::InstanceError> {
/// let mut b = InstanceBuilder::new();
/// let f0 = b.add_facility(Cost::new(10.0)?);
/// let f1 = b.add_facility(Cost::new(3.0)?);
/// let c0 = b.add_client();
/// b.link(c0, f0, Cost::new(1.0)?)?;
/// b.link(c0, f1, Cost::new(5.0)?)?;
/// let inst = b.build()?;
/// assert_eq!(inst.num_links(), 2);
/// assert_eq!(inst.cheapest_link(c0).0, f0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    opening: Vec<Cost>,
    client_links: Vec<Vec<(FacilityId, Cost)>>,
}

impl InstanceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        InstanceBuilder::default()
    }

    /// Adds a facility with the given opening cost, returning its id.
    pub fn add_facility(&mut self, opening: Cost) -> FacilityId {
        self.opening.push(opening);
        FacilityId::new((self.opening.len() - 1) as u32)
    }

    /// Adds a client, returning its id.
    pub fn add_client(&mut self) -> ClientId {
        self.client_links.push(Vec::new());
        ClientId::new((self.client_links.len() - 1) as u32)
    }

    /// Declares that client `j` may connect to facility `i` at `cost`.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if either id is out of range or the
    /// link already exists.
    pub fn link(&mut self, j: ClientId, i: FacilityId, cost: Cost) -> Result<(), InstanceError> {
        if i.index() >= self.opening.len() {
            return Err(InstanceError::FacilityOutOfRange {
                facility: i.index(),
                num_facilities: self.opening.len(),
            });
        }
        let Some(links) = self.client_links.get_mut(j.index()) else {
            return Err(InstanceError::ClientOutOfRange {
                client: j.index(),
                num_clients: self.client_links.len(),
            });
        };
        match links.binary_search_by_key(&i, |(f, _)| *f) {
            Ok(_) => Err(InstanceError::DuplicateLink { client: j.index(), facility: i.index() }),
            Err(pos) => {
                links.insert(pos, (i, cost));
                Ok(())
            }
        }
    }

    /// Finalizes the instance, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if there are no facilities, no clients,
    /// an unreachable client, or all coefficients are zero.
    pub fn build(self) -> Result<Instance, InstanceError> {
        if self.opening.is_empty() {
            return Err(InstanceError::NoFacilities);
        }
        if self.client_links.is_empty() {
            return Err(InstanceError::NoClients);
        }
        if let Some(j) = self.client_links.iter().position(Vec::is_empty) {
            return Err(InstanceError::UnreachableClient { client: j });
        }
        let any_positive = self.opening.iter().any(|c| !c.is_zero())
            || self.client_links.iter().flatten().any(|(_, c)| !c.is_zero());
        if !any_positive {
            return Err(InstanceError::AllZeroCosts);
        }
        let m = self.opening.len();
        let n = self.client_links.len();
        let num_links: usize = self.client_links.iter().map(Vec::len).sum();

        // Client-major CSR: flatten the per-client lists (already sorted by
        // facility id) into the split id/cost lanes and record the cheapest
        // link per client as we go. Rows are id-sorted and `Cost::new`
        // normalized `-0.0`, so the first lane minimum found by
        // `kernels::min_argmin` IS the `(cost, facility id)`-lexicographic
        // minimum.
        let mut client_offsets = Vec::with_capacity(n + 1);
        let mut client_link_ids = Vec::with_capacity(num_links);
        let mut client_link_costs = Vec::with_capacity(num_links);
        let mut cheapest = Vec::with_capacity(n);
        client_offsets.push(0u32);
        for links in &self.client_links {
            let row_start = client_link_ids.len();
            for &(i, c) in links {
                client_link_ids.push(i.raw());
                client_link_costs.push(c.value());
            }
            client_offsets.push(client_link_ids.len() as u32);
            let (k, c) = kernels::min_argmin(&client_link_costs[row_start..])
                .expect("unreachable clients were rejected above");
            cheapest
                .push((FacilityId::new(client_link_ids[row_start + k]), Cost::from_validated(c)));
        }

        let (facility_offsets, facility_link_ids, facility_link_costs) =
            build_facility_lanes(m, &client_offsets, &client_link_ids, &client_link_costs);
        let max_degree = max_degree_of(&client_offsets, &facility_offsets);

        Ok(Instance {
            opening: self.opening,
            client_offsets,
            client_link_ids,
            client_link_costs,
            facility_offsets,
            facility_link_ids,
            facility_link_costs,
            cheapest,
            max_degree,
        })
    }
}

/// Regenerates the facility-major CSR lanes from the client-major ones via
/// counting sort: degree histogram, prefix sums, then a fill pass. Clients
/// are visited in increasing order, so each facility's range comes out
/// sorted by client id. Shared by [`InstanceBuilder::build`] and the delta
/// compaction path.
fn build_facility_lanes(
    m: usize,
    client_offsets: &[u32],
    client_link_ids: &[u32],
    client_link_costs: &[f64],
) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
    let num_links = client_link_ids.len();
    let mut facility_offsets = vec![0u32; m + 1];
    for &i in client_link_ids {
        facility_offsets[i as usize + 1] += 1;
    }
    for i in 1..=m {
        facility_offsets[i] += facility_offsets[i - 1];
    }
    let mut facility_link_ids = vec![0u32; num_links];
    let mut facility_link_costs = vec![0.0f64; num_links];
    let mut cursor: Vec<u32> = facility_offsets[..m].to_vec();
    for j in 0..client_offsets.len() - 1 {
        let lo = client_offsets[j] as usize;
        let hi = client_offsets[j + 1] as usize;
        for k in lo..hi {
            let i = client_link_ids[k] as usize;
            let slot = cursor[i] as usize;
            facility_link_ids[slot] = j as u32;
            facility_link_costs[slot] = client_link_costs[k];
            cursor[i] = slot as u32 + 1;
        }
    }
    debug_assert!((0..m).all(|i| {
        facility_link_ids[facility_offsets[i] as usize..facility_offsets[i + 1] as usize]
            .windows(2)
            .all(|w| w[0] < w[1])
    }));
    (facility_offsets, facility_link_ids, facility_link_costs)
}

/// Maximum row degree over both offset tables — an offsets-only pass, no
/// link-lane traversal.
fn max_degree_of(client_offsets: &[u32], facility_offsets: &[u32]) -> u32 {
    let client_deg =
        client_offsets.windows(2).map(|w| w[1] - w[0]).max().expect("instances have clients");
    let facility_deg =
        facility_offsets.windows(2).map(|w| w[1] - w[0]).max().expect("instances have facilities");
    client_deg.max(facility_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost;

    fn small() -> Instance {
        // 2 facilities, 3 clients, sparse.
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(cost(10.0));
        let f1 = b.add_facility(cost(4.0));
        let c0 = b.add_client();
        let c1 = b.add_client();
        let c2 = b.add_client();
        b.link(c0, f0, cost(1.0)).unwrap();
        b.link(c0, f1, cost(2.0)).unwrap();
        b.link(c1, f1, cost(3.0)).unwrap();
        b.link(c2, f0, cost(0.5)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let inst = small();
        assert_eq!(inst.num_facilities(), 2);
        assert_eq!(inst.num_clients(), 3);
        assert_eq!(inst.num_links(), 4);
        assert!(!inst.is_complete());
        assert_eq!(inst.opening_cost(FacilityId::new(1)), cost(4.0));
        assert_eq!(inst.connection_cost(ClientId::new(0), FacilityId::new(1)), Some(cost(2.0)));
        assert_eq!(inst.connection_cost(ClientId::new(1), FacilityId::new(0)), None);
        assert_eq!(inst.cheapest_link(ClientId::new(0)), (FacilityId::new(0), cost(1.0)));
        assert_eq!(inst.total_opening_cost(), cost(14.0));
        assert_eq!(inst.max_degree(), 2);
        assert_eq!(inst.coefficients().count(), 2 + 4);
    }

    #[test]
    fn link_slices_are_parallel_lanes() {
        let inst = small();
        let links = inst.client_links(ClientId::new(0));
        assert_eq!(links.len(), 2);
        assert!(!links.is_empty());
        assert_eq!(links.ids, &[0, 1]);
        assert_eq!(links.costs, &[1.0, 2.0]);
        assert_eq!(links.get(1), (1, 2.0));
        let pairs: Vec<(u32, f64)> = links.iter().collect();
        assert_eq!(pairs, vec![(0, 1.0), (1, 2.0)]);
        let via_into: Vec<(u32, f64)> = links.into_iter().collect();
        assert_eq!(via_into, pairs);
    }

    #[test]
    fn facility_links_are_the_transpose() {
        let inst = small();
        let links = inst.facility_links(FacilityId::new(0));
        assert_eq!(links.ids, &[0, 2]);
        assert_eq!(links.costs, &[1.0, 0.5]);
        let links = inst.facility_links(FacilityId::new(1));
        assert_eq!(links.ids, &[0, 1]);
        assert_eq!(links.costs, &[2.0, 3.0]);
    }

    #[test]
    fn from_dense_builds_complete_instance() {
        let inst = Instance::from_dense(
            vec![cost(5.0), cost(6.0)],
            vec![vec![cost(1.0), cost(2.0)], vec![cost(3.0), cost(4.0)]],
        )
        .unwrap();
        assert!(inst.is_complete());
        assert_eq!(inst.num_links(), 4);
        assert_eq!(inst.connection_cost(ClientId::new(1), FacilityId::new(0)), Some(cost(3.0)));
    }

    #[test]
    fn from_dense_rejects_ragged_matrix() {
        let out = Instance::from_dense(
            vec![cost(5.0), cost(6.0)],
            vec![vec![cost(1.0)], vec![cost(3.0), cost(4.0)]],
        );
        assert!(out.is_err());
    }

    #[test]
    fn builder_rejects_invalid_links() {
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(cost(1.0));
        let c = b.add_client();
        assert!(matches!(
            b.link(c, FacilityId::new(9), cost(1.0)),
            Err(InstanceError::FacilityOutOfRange { .. })
        ));
        assert!(matches!(
            b.link(ClientId::new(9), f, cost(1.0)),
            Err(InstanceError::ClientOutOfRange { .. })
        ));
        b.link(c, f, cost(1.0)).unwrap();
        assert!(matches!(b.link(c, f, cost(2.0)), Err(InstanceError::DuplicateLink { .. })));
    }

    #[test]
    fn build_validates_invariants() {
        assert!(matches!(InstanceBuilder::new().build(), Err(InstanceError::NoFacilities)));

        let mut b = InstanceBuilder::new();
        b.add_facility(cost(1.0));
        assert!(matches!(b.build(), Err(InstanceError::NoClients)));

        let mut b = InstanceBuilder::new();
        b.add_facility(cost(1.0));
        b.add_client();
        assert!(matches!(b.build(), Err(InstanceError::UnreachableClient { client: 0 })));

        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::ZERO);
        let c = b.add_client();
        b.link(c, f, Cost::ZERO).unwrap();
        assert!(matches!(b.build(), Err(InstanceError::AllZeroCosts)));
    }

    #[test]
    fn csr_layout_is_consistent() {
        let inst = small();
        // Offsets cover the flat lanes exactly, both lanes stay parallel,
        // and per-row id lanes stay sorted by the opposite-side id.
        let total: usize = inst.clients().map(|j| inst.client_links(j).len()).sum();
        assert_eq!(total, inst.num_links());
        let total: usize = inst.facilities().map(|i| inst.facility_links(i).len()).sum();
        assert_eq!(total, inst.num_links());
        for j in inst.clients() {
            let links = inst.client_links(j);
            assert_eq!(links.ids.len(), links.costs.len());
            assert!(links.ids.windows(2).all(|w| w[0] < w[1]));
            // The precomputed cheapest link matches a fresh typed scan.
            let scan = links
                .iter()
                .map(|(i, c)| (FacilityId::new(i), Cost::from_validated(c)))
                .min_by(|(fa, ca), (fb, cb)| ca.cmp(cb).then(fa.cmp(fb)))
                .unwrap();
            assert_eq!(inst.cheapest_link(j), scan);
        }
        for i in inst.facilities() {
            let links = inst.facility_links(i);
            assert_eq!(links.ids.len(), links.costs.len());
            assert!(links.ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn builder_and_from_dense_agree_on_precomputed_fields() {
        // Satellite regression: the same dense instance built through the
        // incremental builder and through `from_dense` must agree on the
        // whole CSR — in particular the build-time-precomputed
        // `cheapest_link` (including its lowest-facility-id tie-break; both
        // clients tie two facilities at the minimum) and `max_degree`.
        let opening = vec![cost(5.0), cost(6.0), cost(7.0)];
        let rows =
            vec![vec![cost(2.0), cost(1.0), cost(1.0)], vec![cost(3.0), cost(3.0), cost(4.0)]];
        let dense = Instance::from_dense(opening.clone(), rows.clone()).unwrap();
        let mut b = InstanceBuilder::new();
        let fids: Vec<FacilityId> = opening.into_iter().map(|f| b.add_facility(f)).collect();
        // Link in reverse facility order to exercise the builder's sorted
        // insertion rather than append order.
        for row in rows {
            let c = b.add_client();
            for (i, cost) in row.into_iter().enumerate().rev() {
                b.link(c, fids[i], cost).unwrap();
            }
        }
        let built = b.build().unwrap();
        assert_eq!(built, dense);
        for j in built.clients() {
            assert_eq!(built.cheapest_link(j), dense.cheapest_link(j));
        }
        assert_eq!(built.cheapest_link(ClientId::new(0)), (FacilityId::new(1), cost(1.0)));
        assert_eq!(built.cheapest_link(ClientId::new(1)), (FacilityId::new(0), cost(3.0)));
        assert_eq!(built.max_degree(), dense.max_degree());
        assert_eq!(built.max_degree(), 3);
    }

    #[test]
    fn id_display_and_iterators() {
        let inst = small();
        assert_eq!(FacilityId::new(1).to_string(), "f1");
        assert_eq!(ClientId::new(2).to_string(), "c2");
        assert_eq!(inst.facilities().count(), 2);
        assert_eq!(inst.clients().count(), 3);
    }
}
