//! Instance classification for solver routing.
//!
//! The solver portfolio (DESIGN.md §3.7) needs to know, per request,
//! whether an instance is *metric* — the constant-factor ball-growing
//! solver is only guaranteed there — plus a handful of shape and
//! degeneracy statistics that pick between the general-case solvers. This
//! module computes an [`InstanceProfile`] deterministically from the
//! instance alone: same instance, same profile, no clocks and no ambient
//! randomness, so routed responses stay byte-deterministic.
//!
//! Metricity is decided exhaustively (via [`crate::metric::metricity_defect`])
//! when the instance is small enough, and by **deterministic sampling** of
//! four-point quadruples otherwise. Sampling can only ever *find* a real
//! violation — every reported defect is an actual cost quadruple — so a
//! truly metric instance is never labelled [`Metricity::Violated`]
//! (property-tested in `classify_properties`). The converse is weaker by
//! construction: a non-metric instance whose violations hide from the
//! sample is labelled [`Metricity::LikelyMetric`]; the metric solver still
//! produces a feasible (just not factor-guaranteed) solution there.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{ClientId, FacilityId, Instance};
use crate::metric;
use crate::spread;

/// Above this many links the exhaustive `O(L²)` four-point scan is
/// replaced by quadruple sampling.
pub const EXHAUSTIVE_LINK_LIMIT: usize = 2_000;

/// Number of quadruple samples drawn in sampling mode.
pub const SAMPLE_QUADRUPLES: u32 = 4_096;

/// Relative tolerance under which a four-point defect counts as rounding
/// noise rather than a metricity violation (scaled by the largest
/// connection cost, so shortest-path closures pass exactly).
pub const METRIC_REL_TOLERANCE: f64 = 1e-9;

/// How the classifier decided on metricity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metricity {
    /// Every four-point quadruple was checked; none violates the
    /// condition beyond tolerance.
    Verified,
    /// Sampled quadruples only; no violation found. May still be
    /// non-metric, but metric solvers remain feasible.
    LikelyMetric,
    /// A concrete violating quadruple was found (exhaustively or by
    /// sampling); its defect is in [`InstanceProfile::observed_defect`].
    Violated,
}

impl Metricity {
    /// Whether routing may treat the instance as metric.
    #[inline]
    pub fn admits_metric_solver(self) -> bool {
        !matches!(self, Metricity::Violated)
    }
}

/// Deterministic shape/degeneracy statistics of one instance, computed by
/// [`classify`]. Everything `SolverKind::Auto` routing consumes lives
/// here; the decision tree itself lives in `distfl_core::dispatch` (this
/// crate stays solver-agnostic).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceProfile {
    /// Number of facilities `m`.
    pub facilities: usize,
    /// Number of clients `n`.
    pub clients: usize,
    /// Number of links `L`.
    pub links: usize,
    /// Link density `L / (m·n)` (1.0 for complete instances).
    pub density: f64,
    /// Coefficient spread `ρ` (see [`spread::coefficient_spread`]).
    pub spread: f64,
    /// The metricity verdict.
    pub metricity: Metricity,
    /// Worst additive four-point defect observed (0.0 when none was
    /// found; exact when `metricity` is [`Metricity::Verified`] or an
    /// exhaustive [`Metricity::Violated`], a lower bound when sampled).
    pub observed_defect: f64,
    /// Whether the defect came from the exhaustive scan (`true`) or
    /// sampling (`false`).
    pub exhaustive: bool,
    /// Number of zero-cost connection links (degenerate: any solver can
    /// serve these clients for free once the facility opens).
    pub zero_cost_links: usize,
    /// Whether every coefficient is equal (`ρ = 1`), the uniform-cost
    /// degenerate family.
    pub uniform_costs: bool,
}

/// Classifies an instance for solver routing.
///
/// Deterministic: the sampling RNG is seeded from a fixed constant and
/// the instance shape, never from ambient state, so the same instance
/// always yields the same profile (and therefore the same `auto` route).
///
/// ```
/// use distfl_instance::classify::{classify, Metricity};
/// use distfl_instance::generators::{Euclidean, InstanceGenerator, UniformRandom};
///
/// # fn main() -> Result<(), distfl_instance::InstanceError> {
/// let metric = classify(&Euclidean::new(5, 20)?.generate(3)?);
/// assert!(metric.metricity.admits_metric_solver());
///
/// let skewed = classify(&UniformRandom::new(5, 20)?.generate(3)?);
/// assert_eq!(skewed.metricity, Metricity::Violated);
/// assert!(skewed.observed_defect > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn classify(instance: &Instance) -> InstanceProfile {
    let m = instance.num_facilities();
    let n = instance.num_clients();
    let links = instance.num_links();
    let rho = spread::coefficient_spread(instance);
    let max_cost = spread::max_coefficient(instance).value();
    let tolerance = METRIC_REL_TOLERANCE * max_cost;

    let exhaustive = links <= EXHAUSTIVE_LINK_LIMIT;
    let (defect, verdict) = if exhaustive {
        let defect = metric::metricity_defect(instance);
        let verdict = if defect <= tolerance { Metricity::Verified } else { Metricity::Violated };
        (defect, verdict)
    } else {
        let defect = sampled_defect(instance);
        let verdict =
            if defect <= tolerance { Metricity::LikelyMetric } else { Metricity::Violated };
        (defect, verdict)
    };

    let zero_cost_links = instance
        .clients()
        .map(|j| instance.client_links(j).costs.iter().filter(|c| **c == 0.0).count())
        .sum();

    InstanceProfile {
        facilities: m,
        clients: n,
        links,
        density: links as f64 / (m as f64 * n as f64),
        spread: rho,
        metricity: verdict,
        observed_defect: defect,
        exhaustive,
        zero_cost_links,
        uniform_costs: rho == 1.0,
    }
}

/// Worst four-point defect over [`SAMPLE_QUADRUPLES`] deterministically
/// sampled quadruples. Every evaluated slack is a real cost quadruple, so
/// a positive return is a genuine metricity violation; zero only means
/// none was *found*.
fn sampled_defect(instance: &Instance) -> f64 {
    let n = instance.num_clients();
    // Fixed seed mixed with the shape: classification is a pure function
    // of the instance, independent of callers and of each other.
    let seed = 0x5EED_C1A5u64 ^ ((instance.num_facilities() as u64) << 32) ^ n as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = 0.0f64;
    for _ in 0..SAMPLE_QUADRUPLES {
        // Quadruple (i, j, k, l): client j linked to facilities i and k,
        // client l linked to facility k; the condition needs c(i,l) too.
        let j = ClientId::new(rng.gen_range(0..n) as u32);
        let j_links = instance.client_links(j);
        if j_links.len() < 2 {
            continue;
        }
        let a = rng.gen_range(0..j_links.len());
        let mut b = rng.gen_range(0..j_links.len() - 1);
        if b >= a {
            b += 1;
        }
        let (i, c_ij) = (FacilityId::new(j_links.ids[a]), j_links.costs[a]);
        let (k, c_kj) = (FacilityId::new(j_links.ids[b]), j_links.costs[b]);
        let k_links = instance.facility_links(k);
        let p = rng.gen_range(0..k_links.len());
        let l = ClientId::new(k_links.ids[p]);
        if l == j {
            continue;
        }
        let c_kl = k_links.costs[p];
        let Some(c_il) = instance.connection_cost(l, i) else {
            continue;
        };
        worst = worst.max(c_il.value() - c_ij - c_kj - c_kl);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::generators::{Euclidean, InstanceGenerator, Metricized, PowerLaw, UniformRandom};
    use crate::instance::InstanceBuilder;

    #[test]
    fn small_metric_instance_is_verified() {
        let inst = Euclidean::new(4, 12).unwrap().generate(5).unwrap();
        let profile = classify(&inst);
        assert_eq!(profile.metricity, Metricity::Verified);
        assert!(profile.exhaustive);
        assert!(profile.metricity.admits_metric_solver());
        assert_eq!(profile.facilities, 4);
        assert_eq!(profile.clients, 12);
        assert_eq!(profile.density, 1.0);
    }

    #[test]
    fn small_non_metric_instance_is_violated() {
        let inst = UniformRandom::new(4, 12).unwrap().generate(5).unwrap();
        let profile = classify(&inst);
        assert_eq!(profile.metricity, Metricity::Violated);
        assert!(profile.observed_defect > 0.0);
        assert!(!profile.metricity.admits_metric_solver());
    }

    #[test]
    fn large_instances_are_sampled() {
        let raw = UniformRandom::new(30, 120).unwrap().generate(2).unwrap();
        assert!(raw.num_links() > EXHAUSTIVE_LINK_LIMIT);
        let profile = classify(&raw);
        assert!(!profile.exhaustive);
        // A dense uniform-random instance has violations everywhere; the
        // sampler must find one.
        assert_eq!(profile.metricity, Metricity::Violated);

        let closed =
            classify(&Metricized::new(UniformRandom::new(30, 120).unwrap()).generate(2).unwrap());
        assert!(!closed.exhaustive);
        assert_eq!(closed.metricity, Metricity::LikelyMetric);
        assert!(closed.metricity.admits_metric_solver());
    }

    #[test]
    fn classification_is_deterministic() {
        let inst = PowerLaw::new(25, 110, 1e6).unwrap().generate(8).unwrap();
        assert_eq!(classify(&inst), classify(&inst));
    }

    #[test]
    fn degeneracy_stats_are_counted() {
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(3.0).unwrap());
        let c0 = b.add_client();
        b.link(c0, f, Cost::ZERO).unwrap();
        let c1 = b.add_client();
        b.link(c1, f, Cost::new(3.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let profile = classify(&inst);
        assert_eq!(profile.zero_cost_links, 1);
        assert!(profile.uniform_costs, "spread {} should be 1", profile.spread);
        // No quadruple exists with one facility, so the scan verifies.
        assert_eq!(profile.metricity, Metricity::Verified);
    }
}
