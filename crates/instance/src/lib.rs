//! # distfl-instance
//!
//! Problem instances for **uncapacitated facility location (UFL)** — the
//! workload substrate of the `distfl` reproduction of Moscibroda–Wattenhofer
//! (PODC 2005).
//!
//! An [`Instance`] is a bipartite structure: `m` facilities with opening
//! costs, `n` clients, and per-pair connection costs stored sparsely (an
//! absent pair means the client cannot use that facility; in the distributed
//! model it also means there is no communication edge). All costs are
//! validated non-negative finite numbers behind the [`Cost`] newtype.
//!
//! The crate also provides:
//!
//! * [`Solution`] — an open-set + assignment with feasibility checking and
//!   cost evaluation,
//! * the [`generators`] module — workload families spanning the axes the
//!   paper's bounds depend on (metric vs non-metric, low vs high coefficient
//!   spread `ρ`, sparse vs dense),
//! * [`spread`] — the coefficient-spread quantities `ρ` and `B` that drive
//!   the round/approximation trade-off,
//! * [`metric`] — metricity diagnostics, and [`classify`] — the
//!   deterministic instance profiler behind `SolverKind::Auto` routing,
//! * [`textio`] — a dependency-free plain-text serialization format,
//! * [`orlib`] — reader/writer for the OR-Library benchmark format.
//!
//! ```
//! use distfl_instance::generators::{InstanceGenerator, UniformRandom};
//!
//! # fn main() -> Result<(), distfl_instance::InstanceError> {
//! let gen = UniformRandom::new(10, 40)?;
//! let inst = gen.generate(7)?;
//! assert_eq!(inst.num_facilities(), 10);
//! assert_eq!(inst.num_clients(), 40);
//! assert!(distfl_instance::spread::coefficient_spread(&inst) >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
mod cost;
mod error;
pub mod generators;
mod instance;
pub mod kernels;
pub mod metric;
pub mod orlib;
mod solution;
pub mod spread;
pub mod textio;
pub mod transform;

pub use cost::Cost;
pub use error::InstanceError;
pub use instance::delta::{DeltaBatch, DeltaReport, PendingClient};
pub use instance::{ClientId, FacilityId, Instance, InstanceBuilder, LinkSlice};
pub use solution::Solution;
