//! Property-based tests for the instance classifier.
//!
//! The load-bearing property for `SolverKind::Auto` routing: the
//! classifier may *miss* a violation (sampling), but it must never
//! *invent* one — an instance from a metric generator family is never
//! labelled [`Metricity::Violated`]. Every defect the classifier reports
//! is a concrete cost quadruple, so this holds by construction; the
//! proptest pins it against regressions across all metric families,
//! including shortest-path closures of the adversarially non-metric ones.

use proptest::prelude::*;

use distfl_instance::classify::{classify, Metricity};
use distfl_instance::generators::{
    Clustered, Euclidean, GridNetwork, InstanceGenerator, Metricized, PowerLaw, UniformRandom,
};
use distfl_instance::Instance;

/// An instance drawn from one of the metric families, across the
/// exhaustive/sampled size boundary.
fn metric_instance() -> impl Strategy<Value = Instance> {
    (0usize..5, 1usize..12, 1usize..40, 0u64..500).prop_map(|(family, m, n, seed)| match family {
        0 => Euclidean::new(m, n).unwrap().generate(seed).unwrap(),
        1 => Clustered::new(1 + m / 4, m, n).unwrap().generate(seed).unwrap(),
        2 => {
            let side = 2 + (m % 5);
            GridNetwork::new(side, side, m.min(side * side).max(1), n)
                .unwrap()
                .generate(seed)
                .unwrap()
        }
        3 => Metricized::new(UniformRandom::new(m, n).unwrap()).generate(seed).unwrap(),
        _ => Metricized::new(PowerLaw::new(m, n, 1e5).unwrap()).generate(seed).unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A metric-family instance is never labelled non-metric.
    #[test]
    fn metric_families_are_never_labelled_violated(inst in metric_instance()) {
        let profile = classify(&inst);
        prop_assert!(
            profile.metricity != Metricity::Violated,
            "metric instance mislabelled (defect {}, exhaustive {})",
            profile.observed_defect,
            profile.exhaustive
        );
        prop_assert!(profile.metricity.admits_metric_solver());
    }

    /// Classification is a pure function of the instance.
    #[test]
    fn classification_is_deterministic(inst in metric_instance()) {
        prop_assert_eq!(classify(&inst), classify(&inst));
    }

    /// Sampling never reports a defect the exhaustive scan would not: on
    /// instances small enough to check both ways, any sampled defect is a
    /// lower bound on the true one.
    #[test]
    fn reported_defects_are_real(
        m in 1usize..8,
        n in 1usize..15,
        seed in 0u64..500,
    ) {
        let inst = UniformRandom::new(m, n).unwrap().generate(seed).unwrap();
        let profile = classify(&inst);
        let truth = distfl_instance::metric::metricity_defect(&inst);
        prop_assert!(
            profile.observed_defect <= truth,
            "classifier defect {} exceeds exhaustive defect {}",
            profile.observed_defect,
            truth
        );
    }
}
