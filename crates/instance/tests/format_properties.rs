//! Property-based round-trip tests for the serialization formats and
//! transformation invariants.

use proptest::prelude::*;

use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_instance::{orlib, spread, textio, transform, Instance};

fn arbitrary_instance() -> impl Strategy<Value = Instance> {
    (1usize..8, 1usize..15, 0u64..500)
        .prop_map(|(m, n, seed)| UniformRandom::new(m, n).unwrap().generate(seed).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn textio_round_trips(inst in arbitrary_instance()) {
        let text = textio::to_string(&inst);
        let parsed = textio::from_str(&text).unwrap();
        prop_assert_eq!(inst, parsed);
    }

    #[test]
    fn orlib_round_trips_dense_instances(inst in arbitrary_instance()) {
        let text = orlib::to_string(&inst).unwrap();
        let parsed = orlib::from_str(&text).unwrap();
        prop_assert_eq!(inst, parsed);
    }

    #[test]
    fn formats_agree_with_each_other(inst in arbitrary_instance()) {
        let via_text = textio::from_str(&textio::to_string(&inst)).unwrap();
        let via_orlib = orlib::from_str(&orlib::to_string(&inst).unwrap()).unwrap();
        prop_assert_eq!(via_text, via_orlib);
    }

    #[test]
    fn scaling_preserves_spread_and_shape(
        inst in arbitrary_instance(),
        factor in 0.01f64..1000.0,
    ) {
        let scaled = transform::scale_costs(&inst, factor).unwrap();
        prop_assert_eq!(scaled.num_links(), inst.num_links());
        let a = spread::coefficient_spread(&inst);
        let b = spread::coefficient_spread(&scaled);
        prop_assert!((a - b).abs() / a < 1e-6, "spread changed: {} vs {}", a, b);
    }

    #[test]
    fn normalize_then_scale_is_identity(inst in arbitrary_instance()) {
        let (normalized, scale) = transform::normalize(&inst).unwrap();
        let back = transform::scale_costs(&normalized, scale).unwrap();
        for (a, b) in inst.coefficients().zip(back.coefficients()) {
            let tol = 1e-9 * a.value().max(1.0);
            prop_assert!((a.value() - b.value()).abs() <= tol);
        }
    }

    #[test]
    fn perturb_zero_noise_is_identity(inst in arbitrary_instance(), seed in 0u64..100) {
        let same = transform::perturb(&inst, 0.0, seed).unwrap();
        prop_assert_eq!(inst, same);
    }
}
