//! Property tests for [`Instance::apply_delta`]: a mutated instance must be
//! *indistinguishable* from a from-scratch build of the post-state — same
//! CSR lanes, same precomputes, equal under `PartialEq` — across random
//! schedules of add/remove/reprice batches.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use distfl_instance::generators::{Clustered, InstanceGenerator, LineCity, UniformRandom};
use distfl_instance::{ClientId, Cost, DeltaBatch, FacilityId, Instance, InstanceBuilder};

/// A shadow of the instance the tests mutate independently: per-client
/// `(facility, cost)` rows plus opening costs, rebuilt into an [`Instance`]
/// through the ordinary builder for comparison.
#[derive(Clone)]
struct Model {
    opening: Vec<f64>,
    rows: Vec<Vec<(u32, f64)>>,
}

impl Model {
    fn of(instance: &Instance) -> Model {
        Model {
            opening: instance.facilities().map(|i| instance.opening_cost(i).value()).collect(),
            rows: instance.clients().map(|j| instance.client_links(j).iter().collect()).collect(),
        }
    }

    fn build(&self) -> Instance {
        let mut b = InstanceBuilder::new();
        let fids: Vec<FacilityId> =
            self.opening.iter().map(|&f| b.add_facility(Cost::new(f).unwrap())).collect();
        for row in &self.rows {
            let c = b.add_client();
            for &(i, cost) in row {
                b.link(c, fids[i as usize], Cost::new(cost).unwrap()).unwrap();
            }
        }
        b.build().unwrap()
    }
}

/// Draws a random batch valid for the model's current shape and applies it
/// to the model; returns the batch. Always leaves at least one client and
/// at least one positive coefficient (openings are drawn positive by the
/// generators, so only degenerate hand-built cases could trip that).
fn random_batch(model: &mut Model, rng: &mut StdRng) -> DeltaBatch {
    let n = model.rows.len();
    let m = model.opening.len();
    let mut batch = DeltaBatch::new();

    // Removals: a few distinct clients, never all of them.
    let max_remove = (n - 1).min(3);
    let num_remove = if max_remove == 0 { 0 } else { rng.gen_range(0..=max_remove) };
    let mut removed: Vec<u32> = Vec::new();
    while removed.len() < num_remove {
        let j = rng.gen_range(0..n as u32);
        if !removed.contains(&j) {
            removed.push(j);
        }
    }
    for &j in &removed {
        batch.remove_client(ClientId::new(j));
    }

    // Reprices: existing links of surviving clients, distinct pairs.
    let mut repriced: Vec<(u32, u32)> = Vec::new();
    for _ in 0..rng.gen_range(0..=4usize) {
        let j = rng.gen_range(0..n as u32);
        if removed.contains(&j) {
            continue;
        }
        let row = &model.rows[j as usize];
        let (i, _) = row[rng.gen_range(0..row.len())];
        if repriced.contains(&(j, i)) {
            continue;
        }
        repriced.push((j, i));
        let c = rng.gen_range(0.0..100.0f64);
        batch.reprice(ClientId::new(j), FacilityId::new(i), Cost::new(c).unwrap());
        model.rows[j as usize].iter_mut().find(|(f, _)| *f == i).unwrap().1 = c;
    }

    // Adds: fresh clients with 1..=m random links each.
    for _ in 0..rng.gen_range(0..=3usize) {
        let p = batch.add_client();
        let deg = rng.gen_range(1..=m);
        let mut fids: Vec<u32> = (0..m as u32).collect();
        for k in 0..deg {
            let swap = rng.gen_range(k..m);
            fids.swap(k, swap);
        }
        let mut row: Vec<(u32, f64)> =
            fids[..deg].iter().map(|&i| (i, rng.gen_range(0.0..100.0f64))).collect();
        row.sort_by_key(|&(i, _)| i);
        for &(i, c) in &row {
            batch.link(p, FacilityId::new(i), Cost::new(c).unwrap()).unwrap();
        }
        model.rows.push(row);
    }

    // Apply the removals to the model last (ids above refer to pre-batch
    // space; added rows were appended after survivors, matching the
    // compaction order because removal preserves relative order).
    let mut keep: Vec<Vec<(u32, f64)>> = Vec::new();
    for (j, row) in model.rows.iter().enumerate() {
        if j >= n || !removed.contains(&(j as u32)) {
            keep.push(row.clone());
        }
    }
    // Reorder: survivors of the original n first, then the added tail —
    // `keep` already has that shape since added rows sit past index n.
    model.rows = keep;
    batch
}

fn any_instance() -> impl Strategy<Value = Instance> {
    (0u8..3, 1usize..8, 1usize..20, 0u64..1000).prop_map(|(family, m, n, seed)| match family {
        0 => UniformRandom::new(m, n).unwrap().generate(seed).unwrap(),
        1 => {
            let clusters = m % 3 + 1;
            Clustered::new(clusters, m.max(clusters), n).unwrap().generate(seed).unwrap()
        }
        _ => LineCity::new(m, n).unwrap().generate(seed).unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn delta_schedules_match_from_scratch_builds(
        base in any_instance(),
        seed in any::<u64>(),
        batches in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = base.clone();
        let mut model = Model::of(&base);
        for _ in 0..batches {
            let batch = random_batch(&mut model, &mut rng);
            let n_before = inst.num_clients();
            let report = inst.apply_delta(&batch).unwrap();
            // The mutated instance is structurally identical to a rebuild.
            prop_assert_eq!(&inst, &model.build());
            // Report sanity: remap is monotone and sized to the pre-state,
            // the added range is the tail of the new id space.
            prop_assert_eq!(report.remap.len(), n_before);
            let survivors: Vec<u32> =
                report.remap.iter().flatten().map(|j| j.raw()).collect();
            prop_assert!(survivors.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(report.added.end as usize, inst.num_clients());
            prop_assert_eq!(
                survivors.len() + report.added.len(),
                inst.num_clients()
            );
        }
    }

    #[test]
    fn reprice_only_batches_leave_the_shape_untouched(
        base in any_instance(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = base.clone();
        let mut batch = DeltaBatch::new();
        let n = inst.num_clients();
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for _ in 0..5usize {
            let j = rng.gen_range(0..n as u32);
            let row = inst.client_links(ClientId::new(j));
            let i = row.ids[rng.gen_range(0..row.len())];
            if seen.contains(&(j, i)) {
                continue;
            }
            seen.push((j, i));
            batch.reprice(
                ClientId::new(j),
                FacilityId::new(i),
                Cost::new(rng.gen_range(0.1..50.0f64)).unwrap(),
            );
        }
        let report = inst.apply_delta(&batch).unwrap();
        prop_assert!(!report.is_structural());
        prop_assert_eq!(inst.num_clients(), base.num_clients());
        prop_assert_eq!(inst.num_links(), base.num_links());
        // Offsets (shape) are untouched; only costs moved.
        for j in inst.clients() {
            prop_assert_eq!(inst.client_links(j).ids, base.client_links(j).ids);
        }
    }
}
