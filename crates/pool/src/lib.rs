//! Persistent work-stealing worker pool for the distfl workspace.
//!
//! The CONGEST engine executes two parallel stages *per simulated round*
//! (node stepping, then sharded delivery). Spawning OS threads with
//! `std::thread::scope` on every round puts a thread create/join pair on
//! the round critical path — tens of microseconds that dwarf the work of a
//! medium-traffic round and forced the engine's parallel gate
//! (`PARALLEL_MIN_VOLUME`) up to 16384 messages. This crate replaces that
//! with a pool of **long-lived workers** that park between rounds, so
//! dispatching a stage costs a queue push and a wake instead of a spawn.
//!
//! Design:
//!
//! - **Per-worker deques with stealing.** Each worker owns a deque; the
//!   submitter distributes a batch round-robin across deques. A worker pops
//!   from the *back* of its own deque (LIFO, cache-hot) and steals from the
//!   *front* of a victim's deque (FIFO, oldest task) when its own is empty.
//! - **Scoped API.** [`WorkerPool::scope`] accepts non-`'static` closures,
//!   exactly like `std::thread::scope`: it blocks until every task spawned
//!   in the scope has finished, which is what makes lending `&mut` chunks
//!   of caller-owned buffers to tasks sound.
//! - **Park/unpark idling.** Idle workers sleep on a condvar guarded by an
//!   *epoch counter* (an eventcount): a worker reads the epoch, scans all
//!   deques, and only parks if the epoch is unchanged — so a push that
//!   lands between scan and park can never be lost.
//! - **Determinism is the caller's contract, kept by construction.** Tasks
//!   write results into pre-assigned, index-ordered slots
//!   ([`WorkerPool::map_indexed`], [`WorkerPool::map_chunks`]); the pool
//!   never merges anything itself, so results are independent of which
//!   worker ran which task and of steal timing.
//! - **Zero workers = inline.** A pool with 0 workers runs every task on
//!   the submitting thread, in spawn order. The serial and parallel code
//!   paths are therefore literally the same code.
//!
//! The crate has exactly one `unsafe` block: the lifetime erasure that
//! every scoped-thread implementation needs (see [`Scope::spawn`]).

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Locks `m`, recovering from poisoning.
///
/// Task bodies run under `catch_unwind` and never while a pool mutex is
/// held, so a poisoned lock means the pool *itself* panicked mid-update —
/// and every pool mutex guards plain data (job deques, epoch and pending
/// counters) that is coherent at every step. Recovering keeps one panicked
/// worker from cascading `PoisonError` panics into every thread that
/// touches the pool afterwards.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A task as stored in a worker deque: lifetime-erased, tagged with the
/// batch it belongs to and the deque it was pushed to.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    batch: Arc<Batch>,
    home: usize,
}

/// Completion state shared by all jobs spawned in one [`WorkerPool::scope`].
struct Batch {
    /// Jobs pushed but not yet finished. The scope blocks until this is 0.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches 0.
    done: Condvar,
    /// First panic payload observed; re-raised on the scope caller.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Jobs executed by a worker other than the owner of their home deque.
    stolen: AtomicU64,
    /// Jobs executed in total (including by the submitting thread).
    tasks: AtomicU64,
}

impl Batch {
    fn new() -> Arc<Self> {
        Arc::new(Batch {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
            stolen: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        })
    }

    /// Run one job body, capturing a panic instead of unwinding through
    /// the worker loop, then decrement `pending` and signal if last.
    fn run_job(&self, run: Box<dyn FnOnce() + Send + 'static>, executor: usize, home: usize) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
            let mut slot = relock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.tasks.fetch_add(1, Ordering::Relaxed);
        if executor != home && executor != CALLER {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        let mut pending = relock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Executor id used for the thread that opened the scope (not a worker).
const CALLER: usize = usize::MAX;

/// Cached obs handles for the per-scope task/steal counters.
fn pool_counters() -> (distfl_obs::Counter, distfl_obs::Counter) {
    static COUNTERS: OnceLock<(distfl_obs::Counter, distfl_obs::Counter)> = OnceLock::new();
    *COUNTERS
        .get_or_init(|| (distfl_obs::counter("pool.tasks"), distfl_obs::counter("pool.stolen")))
}

/// Shared state between the pool handle and its workers.
struct Shared {
    /// One deque per worker. A `Mutex<VecDeque>` per lane is deliberately
    /// boring: lanes are touched a handful of times per engine round, so
    /// contention is negligible and correctness is obvious.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Eventcount epoch: bumped on every push and on shutdown.
    epoch: Mutex<u64>,
    /// Signalled (broadcast) whenever `epoch` is bumped.
    wake: Condvar,
    /// Set once, before the final epoch bump, to retire the workers.
    shutdown: AtomicBool,
}

impl Shared {
    /// Bump the epoch and wake every parked worker.
    fn notify(&self) {
        let mut epoch = relock(&self.epoch);
        *epoch += 1;
        drop(epoch);
        self.wake.notify_all();
    }

    /// Pop a runnable job for `who`: own deque from the back (LIFO),
    /// then every other deque from the front (FIFO steal).
    fn find_job(&self, who: usize) -> Option<Job> {
        if let Some(job) = relock(&self.queues[who]).pop_back() {
            return Some(job);
        }
        let lanes = self.queues.len();
        for offset in 1..lanes {
            let victim = (who + offset) % lanes;
            if let Some(job) = relock(&self.queues[victim]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Worker main loop: run jobs until shutdown, parking when idle.
    fn worker_loop(&self, who: usize) {
        loop {
            // Read the epoch *before* scanning, so a push that races with
            // the scan bumps the epoch and the park below returns at once.
            let seen = *relock(&self.epoch);
            if let Some(job) = self.find_job(who) {
                job.batch.clone().run_job(job.run, who, job.home);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let mut epoch = relock(&self.epoch);
            while *epoch == seen && !self.shutdown.load(Ordering::Acquire) {
                epoch = self.wake.wait(epoch).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// Scheduling statistics for one completed [`WorkerPool::scope`].
///
/// Purely observational: steal counts vary run-to-run and must never be
/// folded into deterministic outputs (transcripts, CSV rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Tasks spawned (and therefore executed) in the scope.
    pub tasks: u64,
    /// Tasks executed by a worker other than its home deque's owner.
    /// Tasks drained by the submitting thread are not counted as steals.
    pub stolen: u64,
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
///
/// Tasks spawned here may borrow from the enclosing environment (`'env`);
/// the scope call does not return until all of them have completed.
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    batch: Arc<Batch>,
    /// Next deque to push to (round-robin).
    next_lane: usize,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawn a task into the pool. The task may borrow data from outside
    /// the `scope` call; completion is guaranteed before `scope` returns.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the only `unsafe` in this crate. We erase `'env` down to
        // `'static` so the job can sit in a deque owned by `'static`
        // worker threads. This is sound because `WorkerPool::scope` does
        // not return until `batch.pending` is 0, i.e. until this closure
        // (and every borrow it holds) has finished running — the same
        // argument `std::thread::scope` relies on. The closure is never
        // cloned and runs exactly once.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };

        let shared = &self.pool.shared;
        let lanes = shared.queues.len();
        *relock(&self.batch.pending) += 1;
        if lanes == 0 {
            // Inline pool: run on the submitting thread, in spawn order.
            self.batch.run_job(run, CALLER, CALLER);
            return;
        }
        let home = self.next_lane % lanes;
        self.next_lane = self.next_lane.wrapping_add(1);
        relock(&shared.queues[home]).push_back(Job { run, batch: Arc::clone(&self.batch), home });
        shared.notify();
    }
}

/// A persistent pool of worker threads with per-worker deques, work
/// stealing, and a scoped spawn API. See the crate docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers()).finish()
    }
}

impl WorkerPool {
    /// Create a pool with `workers` long-lived worker threads.
    ///
    /// `workers == 0` is valid and useful: every task runs inline on the
    /// submitting thread, in spawn order — the deterministic serial
    /// reference that parallel runs are compared against.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|who| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("distfl-pool-{who}"))
                    .spawn(move || shared.worker_loop(who))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles: Mutex::new(handles) }
    }

    /// Number of worker threads (0 for an inline pool).
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Maximum useful concurrency: the workers plus the submitting thread,
    /// which always participates in draining its own scope.
    pub fn parallelism(&self) -> usize {
        self.workers() + 1
    }

    /// The process-wide default pool, created on first use.
    ///
    /// Worker count: `DISTFL_POOL_THREADS` if set (0 = inline), otherwise
    /// `available_parallelism() - 1` (the submitting thread supplies the
    /// remaining lane).
    pub fn global() -> Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            let workers = std::env::var("DISTFL_POOL_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(0, |c| c.get().saturating_sub(1))
                });
            Arc::new(WorkerPool::new(workers))
        }))
    }

    /// A process-wide pool with exactly `workers` workers, created on
    /// first request and reused afterwards. Tests and benches sweep worker
    /// counts {1, 2, 4, 8}; sharing one pool per count keeps that sweep
    /// from spawning threads quadratically.
    pub fn shared(workers: usize) -> Arc<WorkerPool> {
        type Registry = Mutex<Vec<(usize, Arc<WorkerPool>)>>;
        static SHARED: OnceLock<Registry> = OnceLock::new();
        let registry = SHARED.get_or_init(|| Mutex::new(Vec::new()));
        let mut pools = relock(registry);
        if let Some((_, pool)) = pools.iter().find(|(w, _)| *w == workers) {
            return Arc::clone(pool);
        }
        let pool = Arc::new(WorkerPool::new(workers));
        pools.push((workers, Arc::clone(&pool)));
        pool
    }

    /// Run `build`, which may spawn borrowing tasks via [`Scope::spawn`],
    /// then block until every spawned task has finished.
    ///
    /// While blocked, the submitting thread *helps*: it drains jobs
    /// belonging to this scope from the worker deques, so a scope makes
    /// progress even on a machine where every worker is busy elsewhere.
    /// If any task panicked, the first panic is resumed on this thread
    /// after all tasks have settled.
    pub fn scope<'env, F>(&self, build: F) -> ScopeStats
    where
        F: for<'pool> FnOnce(&mut Scope<'pool, 'env>),
    {
        let batch = Batch::new();
        let mut scope = Scope {
            pool: self,
            batch: Arc::clone(&batch),
            next_lane: 0,
            _env: std::marker::PhantomData,
        };
        build(&mut scope);

        // Help: steal back jobs of *this* batch and run them here.
        loop {
            let job = self.shared.queues.iter().find_map(|queue| {
                let mut queue = relock(queue);
                let pos = queue.iter().position(|job| Arc::ptr_eq(&job.batch, &batch));
                pos.and_then(|pos| queue.remove(pos))
            });
            match job {
                Some(job) => job.batch.clone().run_job(job.run, CALLER, job.home),
                None => break,
            }
        }

        let mut pending = relock(&batch.pending);
        while *pending > 0 {
            pending = batch.done.wait(pending).unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);

        if let Some(payload) = relock(&batch.panic).take() {
            resume_unwind(payload);
        }
        let stats = ScopeStats {
            tasks: batch.tasks.load(Ordering::Relaxed),
            stolen: batch.stolen.load(Ordering::Relaxed),
        };
        if distfl_obs::enabled() {
            let (tasks, stolen) = pool_counters();
            tasks.add(stats.tasks);
            stolen.add(stats.stolen);
        }
        stats
    }

    /// Evaluate `f(0..n)` in parallel and collect results in index order.
    ///
    /// Each task writes into its own pre-assigned slot, so the output is
    /// identical to `(0..n).map(f).collect()` regardless of worker count
    /// or steal timing — the primitive the experiment sweeps are built on.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let f = &f;
        self.scope(|scope| {
            for (index, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = Some(f(index)));
            }
        });
        slots.into_iter().map(|slot| slot.expect("map_indexed task completed")).collect()
    }

    /// Split `items` into chunks of `chunk` elements and evaluate
    /// `f(chunk_index, chunk)` on each in parallel; results come back in
    /// chunk order together with the scope's scheduling stats.
    pub fn map_chunks<T, R, F>(&self, items: &mut [T], chunk: usize, f: F) -> (Vec<R>, ScopeStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let count = items.len().div_ceil(chunk);
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        let f = &f;
        let stats = self.scope(|scope| {
            for ((index, piece), slot) in items.chunks_mut(chunk).enumerate().zip(slots.iter_mut())
            {
                scope.spawn(move || *slot = Some(f(index, piece)));
            }
        });
        let results =
            slots.into_iter().map(|slot| slot.expect("map_chunks task completed")).collect();
        (results, stats)
    }

    /// [`WorkerPool::map_chunks`] for side-effecting loop bodies: run
    /// `f(chunk_index, chunk)` over chunks of `items`, return the stats.
    pub fn parallel_for_chunked<T, F>(&self, items: &mut [T], chunk: usize, f: F) -> ScopeStats
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.map_chunks(items, chunk, f).1
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
        for handle in relock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn inline_pool_runs_tasks_in_spawn_order() {
        let pool = WorkerPool::new(0);
        let log = Mutex::new(Vec::new());
        let stats = pool.scope(|scope| {
            for i in 0..8 {
                let log = &log;
                scope.spawn(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
        assert_eq!(stats.tasks, 8);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn scope_blocks_until_all_tasks_finish() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            hits.store(0, Ordering::SeqCst);
            let stats = pool.scope(|scope| {
                for _ in 0..16 {
                    let hits = &hits;
                    scope.spawn(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::SeqCst), 16);
            assert_eq!(stats.tasks, 16);
        }
    }

    #[test]
    fn tasks_may_borrow_mutable_chunks() {
        let pool = WorkerPool::new(2);
        let mut data = vec![0u64; 1000];
        pool.scope(|scope| {
            for (i, chunk) in data.chunks_mut(100).enumerate() {
                scope.spawn(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 100 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn map_indexed_is_index_ordered_at_every_worker_count() {
        let expected: Vec<usize> = (0..200).map(|i| i * i).collect();
        for workers in [0, 1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.map_indexed(200, |i| i * i), expected, "workers={workers}");
        }
    }

    #[test]
    fn map_chunks_returns_chunk_ordered_results() {
        let pool = WorkerPool::new(4);
        let mut data: Vec<u64> = (0..103).collect();
        let (sums, stats) = pool.map_chunks(&mut data, 10, |index, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
            (index, chunk.iter().sum::<u64>())
        });
        assert_eq!(sums.len(), 11);
        assert!(sums.iter().enumerate().all(|(i, &(index, _))| index == i));
        let total: u64 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (1..=103).sum::<u64>());
        assert_eq!(stats.tasks, 11);
    }

    #[test]
    fn nested_scopes_complete() {
        let pool = WorkerPool::new(2);
        let outer: Vec<Vec<usize>> =
            pool.map_indexed(4, |i| pool.map_indexed(5, move |j| i * 10 + j));
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(inner, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| {});
                scope.spawn(|| panic!("boom"));
                scope.spawn(|| {});
            });
        }));
        assert!(caught.is_err());
        // The pool must stay usable after a panicking batch.
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn shared_pools_are_reused_per_worker_count() {
        let a = WorkerPool::shared(2);
        let b = WorkerPool::shared(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.workers(), 2);
        let c = WorkerPool::shared(3);
        assert_eq!(c.workers(), 3);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = WorkerPool::new(2);
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            for i in 0..10 {
                let sum = &sum;
                scope.spawn(move || {
                    sum.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        drop(pool);
        assert_eq!(sum.load(Ordering::SeqCst), 45);
    }
}
