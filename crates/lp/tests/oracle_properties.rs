//! Property-based cross-validation of the exact oracles.

use proptest::prelude::*;

use distfl_instance::{Cost, Instance};
use distfl_lp::{exact, flow, line};

fn line_instance(fpos: &[f64], opening: &[f64], cpos: &[f64]) -> Instance {
    let open: Vec<Cost> = opening.iter().map(|&f| Cost::new(f).unwrap()).collect();
    let costs: Vec<Vec<Cost>> = cpos
        .iter()
        .map(|&q| fpos.iter().map(|&p| Cost::new((p - q).abs()).unwrap()).collect())
        .collect();
    Instance::from_dense(open, costs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn line_dp_agrees_with_branch_and_bound(
        fpos in prop::collection::vec(0.0f64..100.0, 1..8),
        opening in prop::collection::vec(0.0f64..50.0, 8),
        cpos in prop::collection::vec(0.0f64..100.0, 1..15),
    ) {
        let opening = &opening[..fpos.len()];
        let dp = line::solve_line(&fpos, opening, &cpos);
        let inst = line_instance(&fpos, opening, &cpos);
        let bnb = exact::solve(&inst).unwrap();
        prop_assert!(
            (dp.cost - bnb.cost.value()).abs() < 1e-6,
            "dp {} vs bnb {}", dp.cost, bnb.cost.value()
        );
        prop_assert!(!dp.open.is_empty());
    }

    #[test]
    fn line_dp_open_set_realizes_its_cost(
        fpos in prop::collection::vec(0.0f64..100.0, 1..10),
        opening in prop::collection::vec(0.0f64..50.0, 10),
        cpos in prop::collection::vec(0.0f64..100.0, 1..30),
    ) {
        let opening = &opening[..fpos.len()];
        let dp = line::solve_line(&fpos, opening, &cpos);
        let realized: f64 = dp.open.iter().map(|&i| opening[i]).sum::<f64>()
            + cpos
                .iter()
                .map(|&q| {
                    dp.open
                        .iter()
                        .map(|&i| (fpos[i] - q).abs())
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>();
        prop_assert!((dp.cost - realized).abs() < 1e-6);
    }

    #[test]
    fn flow_conservation_and_optimality_on_bipartite_transport(
        costs in prop::collection::vec(prop::collection::vec(0.0f64..20.0, 3), 2),
        caps in prop::collection::vec(1i64..4, 2),
    ) {
        // 2 suppliers x 3 unit-demand consumers.
        let total_cap: i64 = caps.iter().sum();
        let mut net = flow::FlowNetwork::new(7);
        let mut supply_edges = Vec::new();
        for (i, &cap) in caps.iter().enumerate() {
            supply_edges.push(net.add_edge(0, 1 + i, cap, 0.0));
        }
        let mut link_edges = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                link_edges.push(((i, j), net.add_edge(1 + i, 3 + j, 1, c)));
            }
        }
        for j in 0..3 {
            net.add_edge(3 + j, 6, 1, 0.0);
        }
        let want = 3i64.min(total_cap);
        let (flow_sent, cost) = net.min_cost_flow(0, 6, 3);
        prop_assert_eq!(flow_sent, want, "should saturate up to capacity");
        // Conservation: supplier outflow equals sink inflow.
        let supplied: i64 = supply_edges.iter().map(|&e| net.flow_on(e)).sum();
        prop_assert_eq!(supplied, flow_sent);
        // Cost equals the sum over used links.
        let link_cost: f64 = link_edges
            .iter()
            .map(|&((i, j), e)| costs[i][j] * net.flow_on(e) as f64)
            .sum();
        prop_assert!((cost - link_cost).abs() < 1e-9);
        // Optimality vs brute force when everything fits.
        if total_cap >= 3 {
            let mut best = f64::INFINITY;
            for a in 0..2usize {
                for b in 0..2usize {
                    for c3 in 0..2usize {
                        let pick = [a, b, c3];
                        let load0 = pick.iter().filter(|&&p| p == 0).count() as i64;
                        if load0 <= caps[0] && 3 - load0 <= caps[1] {
                            let total: f64 =
                                pick.iter().enumerate().map(|(j, &p)| costs[p][j]).sum();
                            best = best.min(total);
                        }
                    }
                }
            }
            prop_assert!((cost - best).abs() < 1e-9, "flow {} vs brute {}", cost, best);
        }
    }
}
