//! Sequential reference implementation of randomized rounding.
//!
//! Given a fractional point `(y, x)`, the classic non-metric rounding
//! repeats `T = Θ(log n)` independent trials: in each trial facility `i`
//! opens with probability `min(1, λ·y_i)`; a client whose fractional
//! support hit an open facility connects to the cheapest such facility.
//! After the trials, any still-unserved client *forces open* the facility
//! minimizing `c_ij + f_i` (a deterministic fallback that keeps the output
//! feasible with probability 1). In expectation the result costs
//! `O(log n)` times the fractional objective — the `log(m+n)` factor of
//! the paper's bound.
//!
//! The distributed rounding stage in `distfl-core` implements the same
//! process with CONGEST messages; this module is its oracle in
//! cross-validation tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use distfl_instance::{FacilityId, Instance, Solution};

use crate::primal::FractionalSolution;

/// Configuration for [`round`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundingConfig {
    /// Per-trial opening boost `λ` (each trial opens `i` with probability
    /// `min(1, λ·y_i)`).
    pub boost: f64,
    /// Number of independent trials before the deterministic fallback.
    pub trials: u32,
}

impl RoundingConfig {
    /// The standard configuration for an instance: `λ = 2`,
    /// `T = ⌈log₂(n+m)⌉ + 2` trials (see [`standard_trials`]).
    pub fn for_instance(instance: &Instance) -> Self {
        RoundingConfig {
            boost: 2.0,
            trials: standard_trials(instance.num_clients() + instance.num_facilities()),
        }
    }
}

/// The standard trial count `T = ⌈log₂(max(total, 2))⌉ + 2` for a network
/// of `total` nodes, in integer arithmetic.
///
/// Totals below 2 clamp to 2, so the count is always at least 3 and
/// monotone in `total`. (The earlier float formula
/// `total.log2().ceil() as u32 + 2` collapsed on degenerate totals:
/// `log2(0.0) = -inf` and `log2(1.0) = 0.0` both cast to 0, silently
/// yielding a smaller trial budget for the tiniest inputs than for every
/// real instance.)
pub fn standard_trials(total: usize) -> u32 {
    let total = total.max(2);
    // ceil(log2(t)) for t >= 2, without going through floats.
    (usize::BITS - (total - 1).leading_zeros()) + 2
}

/// Outcome of a rounding run, with diagnostics used by experiment E5.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundingOutcome {
    /// The feasible integral solution.
    pub solution: Solution,
    /// Clients that were still unserved after all randomized trials and
    /// took the deterministic fallback.
    pub fallback_clients: usize,
    /// Trial (1-based) by which half the clients were served, if any.
    pub median_trial: Option<u32>,
}

/// Rounds a fractional point into a feasible integral solution.
///
/// # Panics
///
/// Panics if the fractional point's shape does not match the instance.
pub fn round(
    instance: &Instance,
    fractional: &FractionalSolution,
    config: RoundingConfig,
    seed: u64,
) -> RoundingOutcome {
    assert_eq!(fractional.y().len(), instance.num_facilities(), "shape mismatch");
    let n = instance.num_clients();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment: Vec<Option<FacilityId>> = vec![None; n];
    let mut served = 0usize;
    let mut median_trial = None;

    for trial in 1..=config.trials {
        let open: Vec<bool> = fractional
            .y()
            .iter()
            .map(|&yi| rng.gen::<f64>() < (config.boost * yi).min(1.0))
            .collect();
        for j in instance.clients() {
            if assignment[j.index()].is_some() {
                continue;
            }
            // Connect to the cheapest open facility in the fractional
            // support of j.
            let best = fractional
                .x(j)
                .iter()
                .filter(|&&(i, v)| v > 0.0 && open[i.index()])
                .filter_map(|&(i, _)| instance.connection_cost(j, i).map(|c| (i, c)))
                .min_by(|(fa, ca), (fb, cb)| ca.cmp(cb).then(fa.cmp(fb)));
            if let Some((i, _)) = best {
                assignment[j.index()] = Some(i);
                served += 1;
            }
        }
        if median_trial.is_none() && served * 2 >= n {
            median_trial = Some(trial);
        }
        if served == n {
            break;
        }
    }

    // Deterministic fallback: force open the best (c + f) facility.
    let mut fallback_clients = 0;
    for j in instance.clients() {
        if assignment[j.index()].is_none() {
            fallback_clients += 1;
            let (i, _) = instance
                .client_links(j)
                .iter()
                .map(|(i, c)| {
                    let i = FacilityId::new(i);
                    (i, c + instance.opening_cost(i).value())
                })
                .min_by(|(fa, ca), (fb, cb)| ca.total_cmp(cb).then(fa.cmp(fb)))
                .expect("instance invariant: every client has a link");
            assignment[j.index()] = Some(i);
        }
    }

    let assignment: Vec<FacilityId> =
        assignment.into_iter().map(|a| a.expect("all clients assigned")).collect();
    let solution = Solution::from_assignment(instance, assignment)
        .expect("rounded assignment uses existing links");
    RoundingOutcome { solution, fallback_clients, median_trial }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};
    use distfl_instance::{Cost, InstanceBuilder};

    fn fractional_uniform(instance: &Instance) -> FractionalSolution {
        // Spread each client evenly over its links; open proportionally.
        let mut y = vec![0.0f64; instance.num_facilities()];
        let x: Vec<Vec<(FacilityId, f64)>> = instance
            .clients()
            .map(|j| {
                let links = instance.client_links(j);
                let share = 1.0 / links.len() as f64;
                for &i in links.ids {
                    y[i as usize] = y[i as usize].max(share);
                }
                links.ids.iter().map(|&i| (FacilityId::new(i), share)).collect()
            })
            .collect();
        FractionalSolution::new(y, x)
    }

    #[test]
    fn output_is_always_feasible() {
        for seed in 0..10 {
            let inst = UniformRandom::new(6, 15).unwrap().generate(seed).unwrap();
            let frac = fractional_uniform(&inst);
            frac.check_feasible(&inst, 1e-9).unwrap();
            let out = round(&inst, &frac, RoundingConfig::for_instance(&inst), seed);
            out.solution.check_feasible(&inst).unwrap();
        }
    }

    #[test]
    fn zero_trials_forces_fallback_everywhere() {
        let inst = UniformRandom::new(4, 9).unwrap().generate(1).unwrap();
        let frac = fractional_uniform(&inst);
        let out = round(&inst, &frac, RoundingConfig { boost: 2.0, trials: 0 }, 7);
        assert_eq!(out.fallback_clients, 9);
        assert_eq!(out.median_trial, None);
        out.solution.check_feasible(&inst).unwrap();
    }

    #[test]
    fn enough_trials_rarely_needs_fallback() {
        let inst = UniformRandom::new(5, 40).unwrap().generate(2).unwrap();
        let frac = fractional_uniform(&inst);
        let out = round(&inst, &frac, RoundingConfig { boost: 3.0, trials: 30 }, 3);
        assert_eq!(out.fallback_clients, 0, "30 boosted trials should serve everyone");
        assert!(out.median_trial.unwrap() <= 3);
    }

    #[test]
    fn rounding_is_deterministic_per_seed() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(4).unwrap();
        let frac = fractional_uniform(&inst);
        let cfg = RoundingConfig::for_instance(&inst);
        let a = round(&inst, &frac, cfg, 9);
        let b = round(&inst, &frac, cfg, 9);
        assert_eq!(a, b);
        let c = round(&inst, &frac, cfg, 10);
        // Different seeds usually give different assignments.
        assert!(a != c || a.solution == c.solution);
    }

    #[test]
    fn fully_integral_fractional_point_rounds_to_itself() {
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(3.0).unwrap());
        let f1 = b.add_facility(Cost::new(100.0).unwrap());
        let c0 = b.add_client();
        b.link(c0, f0, Cost::new(1.0).unwrap()).unwrap();
        b.link(c0, f1, Cost::new(1.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let frac = FractionalSolution::new(vec![1.0, 0.0], vec![vec![(f0, 1.0)]]);
        let out = round(&inst, &frac, RoundingConfig { boost: 1.0, trials: 5 }, 0);
        assert!(out.solution.is_open(f0));
        assert!(!out.solution.is_open(f1));
        assert_eq!(out.fallback_clients, 0);
    }

    #[test]
    fn expected_cost_tracks_fractional_objective() {
        // Averaged over seeds, rounded cost should stay within the
        // O(boost + log) envelope of the fractional objective.
        let inst = UniformRandom::new(8, 30).unwrap().generate(5).unwrap();
        let frac = fractional_uniform(&inst);
        let lp = frac.objective(&inst);
        let cfg = RoundingConfig::for_instance(&inst);
        let avg: f64 =
            (0..20).map(|s| round(&inst, &frac, cfg, s).solution.cost(&inst).value()).sum::<f64>()
                / 20.0;
        let envelope = lp * (cfg.boost * cfg.trials as f64 + 2.0);
        assert!(avg <= envelope, "avg rounded {avg} vs envelope {envelope}");
    }

    #[test]
    fn trial_count_survives_degenerate_totals() {
        // Regression: the float formula `total.log2().ceil() as u32 + 2`
        // produced 2 for both an empty and a single-node network (via the
        // -inf and 0.0 casts) — below the floor any real instance gets.
        assert_eq!(standard_trials(0), 3);
        assert_eq!(standard_trials(1), 3);
        assert_eq!(standard_trials(2), 3);
        assert!(standard_trials(0) >= 3 && standard_trials(1) >= 3);
    }

    #[test]
    fn trial_count_matches_the_log_formula_for_real_sizes() {
        for (total, expected) in [(3, 4), (4, 4), (5, 5), (26, 7), (1024, 12), (1025, 13)] {
            assert_eq!(standard_trials(total), expected, "total {total}");
            // Agrees with the float formula wherever that one was sound.
            assert_eq!(standard_trials(total), (total as f64).log2().ceil() as u32 + 2);
        }
        // Monotone in the network size.
        for t in 2..200usize {
            assert!(standard_trials(t + 1) >= standard_trials(t));
        }
    }
}
