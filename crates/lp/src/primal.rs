//! Fractional primal solutions.

use serde::{Deserialize, Serialize};

use distfl_instance::{ClientId, FacilityId, Instance};

/// A reason a fractional point is infeasible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrimalViolation {
    /// A variable is negative or not finite.
    InvalidValue {
        /// Human-readable location.
        at: String,
        /// The offending value.
        value: f64,
    },
    /// Client `j`'s assignments sum to less than 1.
    UnderCovered {
        /// The client.
        client: ClientId,
        /// The coverage `Σ_i x_ij`.
        coverage: f64,
    },
    /// `x_ij` exceeds `y_i`.
    ExceedsOpening {
        /// The client.
        client: ClientId,
        /// The facility.
        facility: FacilityId,
        /// The assignment value `x_ij`.
        x: f64,
        /// The opening value `y_i`.
        y: f64,
    },
    /// `x_ij` is positive on a pair with no link.
    MissingLink {
        /// The client.
        client: ClientId,
        /// The facility.
        facility: FacilityId,
    },
    /// Vector lengths do not match the instance.
    ShapeMismatch,
}

impl std::fmt::Display for PrimalViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimalViolation::InvalidValue { at, value } => {
                write!(f, "invalid value {value} at {at}")
            }
            PrimalViolation::UnderCovered { client, coverage } => {
                write!(f, "client {client} covered only {coverage}")
            }
            PrimalViolation::ExceedsOpening { client, facility, x, y } => {
                write!(f, "x[{client},{facility}] = {x} exceeds y[{facility}] = {y}")
            }
            PrimalViolation::MissingLink { client, facility } => {
                write!(f, "positive assignment on missing link ({client}, {facility})")
            }
            PrimalViolation::ShapeMismatch => write!(f, "solution shape does not match instance"),
        }
    }
}

impl std::error::Error for PrimalViolation {}

/// A fractional primal point `(y, x)` of the facility-location LP.
///
/// `x` is stored sparsely per client as `(facility, value)` pairs; pairs
/// with zero value may be omitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractionalSolution {
    /// Opening variables `y_i`, indexed by facility.
    y: Vec<f64>,
    /// Assignment variables per client: `(facility, x_ij)` pairs.
    x: Vec<Vec<(FacilityId, f64)>>,
}

impl FractionalSolution {
    /// Creates a fractional point without validation; call
    /// [`FractionalSolution::check_feasible`] to verify it.
    pub fn new(y: Vec<f64>, x: Vec<Vec<(FacilityId, f64)>>) -> Self {
        FractionalSolution { y, x }
    }

    /// The canonical fractional point induced by an integral solution.
    pub fn from_integral(instance: &Instance, solution: &distfl_instance::Solution) -> Self {
        let y =
            instance.facilities().map(|i| if solution.is_open(i) { 1.0 } else { 0.0 }).collect();
        let x = instance.clients().map(|j| vec![(solution.assigned(j), 1.0)]).collect();
        FractionalSolution { y, x }
    }

    /// Opening variables.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Assignment variables of client `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn x(&self, j: ClientId) -> &[(FacilityId, f64)] {
        &self.x[j.index()]
    }

    /// LP objective value `Σ f_i y_i + Σ c_ij x_ij`.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match `instance` or an assignment
    /// references a missing link.
    pub fn objective(&self, instance: &Instance) -> f64 {
        let opening: f64 = instance
            .facilities()
            .map(|i| instance.opening_cost(i).value() * self.y[i.index()])
            .sum();
        let connection: f64 = instance
            .clients()
            .flat_map(|j| {
                self.x[j.index()].iter().map(move |&(i, v)| {
                    instance
                        .connection_cost(j, i)
                        .expect("assignment references existing link")
                        .value()
                        * v
                })
            })
            .sum();
        opening + connection
    }

    /// Verifies LP feasibility up to an additive tolerance.
    ///
    /// # Errors
    ///
    /// Returns the first [`PrimalViolation`] found.
    pub fn check_feasible(
        &self,
        instance: &Instance,
        tolerance: f64,
    ) -> Result<(), PrimalViolation> {
        if self.y.len() != instance.num_facilities() || self.x.len() != instance.num_clients() {
            return Err(PrimalViolation::ShapeMismatch);
        }
        for (i, &yi) in self.y.iter().enumerate() {
            if !yi.is_finite() || yi < -tolerance {
                return Err(PrimalViolation::InvalidValue { at: format!("y[{i}]"), value: yi });
            }
        }
        for j in instance.clients() {
            let mut coverage = 0.0;
            for &(i, v) in &self.x[j.index()] {
                if !v.is_finite() || v < -tolerance {
                    return Err(PrimalViolation::InvalidValue {
                        at: format!("x[{j},{i}]"),
                        value: v,
                    });
                }
                if v > tolerance && instance.connection_cost(j, i).is_none() {
                    return Err(PrimalViolation::MissingLink { client: j, facility: i });
                }
                let y = self.y.get(i.index()).copied().unwrap_or(0.0);
                if v > y + tolerance {
                    return Err(PrimalViolation::ExceedsOpening {
                        client: j,
                        facility: i,
                        x: v,
                        y,
                    });
                }
                coverage += v;
            }
            if coverage < 1.0 - tolerance {
                return Err(PrimalViolation::UnderCovered { client: j, coverage });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::{Cost, InstanceBuilder, Solution};

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(10.0).unwrap());
        let f1 = b.add_facility(Cost::new(6.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f0, Cost::new(1.0).unwrap()).unwrap();
        b.link(c0, f1, Cost::new(2.0).unwrap()).unwrap();
        b.link(c1, f1, Cost::new(3.0).unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn feasible_fractional_point() {
        let inst = inst();
        let sol = FractionalSolution::new(
            vec![0.5, 1.0],
            vec![
                vec![(FacilityId::new(0), 0.5), (FacilityId::new(1), 0.5)],
                vec![(FacilityId::new(1), 1.0)],
            ],
        );
        sol.check_feasible(&inst, 1e-9).unwrap();
        // 10*0.5 + 6*1 + 1*0.5 + 2*0.5 + 3*1 = 15.5.
        assert!((sol.objective(&inst) - 15.5).abs() < 1e-12);
    }

    #[test]
    fn from_integral_is_feasible_with_same_cost() {
        let inst = inst();
        let integral =
            Solution::from_assignment(&inst, vec![FacilityId::new(1), FacilityId::new(1)]).unwrap();
        let frac = FractionalSolution::from_integral(&inst, &integral);
        frac.check_feasible(&inst, 0.0).unwrap();
        assert!((frac.objective(&inst) - integral.cost(&inst).value()).abs() < 1e-12);
    }

    #[test]
    fn detects_under_coverage() {
        let inst = inst();
        let sol = FractionalSolution::new(
            vec![1.0, 1.0],
            vec![vec![(FacilityId::new(0), 0.4)], vec![(FacilityId::new(1), 1.0)]],
        );
        assert!(matches!(
            sol.check_feasible(&inst, 1e-9),
            Err(PrimalViolation::UnderCovered { coverage, .. }) if (coverage - 0.4).abs() < 1e-12
        ));
    }

    #[test]
    fn detects_x_exceeding_y() {
        let inst = inst();
        let sol = FractionalSolution::new(
            vec![0.3, 1.0],
            vec![
                vec![(FacilityId::new(0), 0.8), (FacilityId::new(1), 0.2)],
                vec![(FacilityId::new(1), 1.0)],
            ],
        );
        assert!(matches!(
            sol.check_feasible(&inst, 1e-9),
            Err(PrimalViolation::ExceedsOpening { .. })
        ));
    }

    #[test]
    fn detects_missing_link_and_bad_values() {
        let inst = inst();
        // Client 1 has no link to facility 0.
        let sol = FractionalSolution::new(
            vec![1.0, 1.0],
            vec![vec![(FacilityId::new(0), 1.0)], vec![(FacilityId::new(0), 1.0)]],
        );
        assert!(matches!(
            sol.check_feasible(&inst, 1e-9),
            Err(PrimalViolation::MissingLink { .. })
        ));

        let sol = FractionalSolution::new(
            vec![-1.0, 1.0],
            vec![vec![(FacilityId::new(1), 1.0)], vec![(FacilityId::new(1), 1.0)]],
        );
        assert!(matches!(
            sol.check_feasible(&inst, 1e-9),
            Err(PrimalViolation::InvalidValue { .. })
        ));
    }

    #[test]
    fn detects_shape_mismatch() {
        let inst = inst();
        let sol = FractionalSolution::new(vec![1.0], vec![]);
        assert_eq!(sol.check_feasible(&inst, 1e-9), Err(PrimalViolation::ShapeMismatch));
    }
}
