//! Exact uncapacitated facility location on a **line metric**, in
//! polynomial time.
//!
//! When facilities and clients live on a line and connection costs are
//! distances, an optimal solution assigns every client to its nearest
//! open facility, so consecutive open facilities split the clients
//! between them at their midpoint. That structure admits an `O(m²·log n)`
//! dynamic program over facilities sorted by position — an *exact* oracle
//! at sizes far beyond the subset branch-and-bound, which is what lets
//! the experiments report true approximation ratios on large instances
//! (experiment E2's `line` rows).

/// Result of the line DP.
#[derive(Debug, Clone, PartialEq)]
pub struct LineOptimum {
    /// The optimal total cost.
    pub cost: f64,
    /// Indices (into the *input* facility arrays) of the open facilities.
    pub open: Vec<usize>,
}

/// Solves UFL exactly on a line: facility positions and opening costs,
/// client positions; connection cost is `|p_i − q_j|`.
///
/// # Panics
///
/// Panics if the facility arrays' lengths differ, either side is empty,
/// or any value is not finite / any opening cost is negative.
pub fn solve_line(facility_pos: &[f64], opening: &[f64], client_pos: &[f64]) -> LineOptimum {
    assert_eq!(facility_pos.len(), opening.len(), "facility arrays must align");
    assert!(!facility_pos.is_empty(), "need at least one facility");
    assert!(!client_pos.is_empty(), "need at least one client");
    assert!(
        facility_pos.iter().chain(client_pos).all(|v| v.is_finite()),
        "positions must be finite"
    );
    assert!(
        opening.iter().all(|f| f.is_finite() && *f >= 0.0),
        "opening costs must be finite and non-negative"
    );

    let m = facility_pos.len();
    // Facilities sorted by position (stable on ties).
    let mut forder: Vec<usize> = (0..m).collect();
    forder.sort_by(|&a, &b| facility_pos[a].total_cmp(&facility_pos[b]).then(a.cmp(&b)));
    let fpos: Vec<f64> = forder.iter().map(|&i| facility_pos[i]).collect();
    let fopen: Vec<f64> = forder.iter().map(|&i| opening[i]).collect();

    // Clients sorted with prefix sums.
    let mut q: Vec<f64> = client_pos.to_vec();
    q.sort_by(f64::total_cmp);
    let n = q.len();
    let mut prefix = vec![0.0f64; n + 1];
    for (k, &v) in q.iter().enumerate() {
        prefix[k + 1] = prefix[k] + v;
    }
    // Σ q_l for l in [lo, hi).
    let range_sum = |lo: usize, hi: usize| prefix[hi] - prefix[lo];
    // First client index with position >= x.
    let lower_bound = |x: f64| q.partition_point(|&v| v < x);

    // Cost of serving clients [lo, hi) all by a facility at `pos`.
    let serve_all = |pos: f64, lo: usize, hi: usize| -> f64 {
        if lo >= hi {
            return 0.0;
        }
        // Split into clients left of pos and right of pos.
        let mid = lower_bound(pos).clamp(lo, hi);
        (mid - lo) as f64 * pos - range_sum(lo, mid) + range_sum(mid, hi) - (hi - mid) as f64 * pos
    };
    // Cost of the clients strictly between consecutive open facilities at
    // positions a < b (client range [lo, hi)), each served by the nearer.
    let serve_between = |a: f64, b: f64, lo: usize, hi: usize| -> f64 {
        if lo >= hi {
            return 0.0;
        }
        let split = lower_bound(f64::midpoint(a, b)).clamp(lo, hi);
        // Left part pays q - a, right part pays b - q.
        (range_sum(lo, split) - (split - lo) as f64 * a)
            + ((hi - split) as f64 * b - range_sum(split, hi))
    };

    // dp[k] = best cost of a solution whose rightmost open facility is the
    // k-th (sorted), covering every client left of it appropriately; the
    // clients right of the last open facility are charged at the end.
    let mut dp = vec![f64::INFINITY; m];
    let mut prev: Vec<Option<usize>> = vec![None; m];
    for k in 0..m {
        let boundary = lower_bound(fpos[k]);
        // Option 1: k is the first (leftmost) open facility: every client
        // left of it connects to it.
        dp[k] = fopen[k] + serve_all(fpos[k], 0, boundary);
        // Option 2: some earlier facility a is open immediately before k.
        for a in 0..k {
            let a_boundary = lower_bound(fpos[a]);
            let between = serve_between(fpos[a], fpos[k], a_boundary, boundary);
            let candidate = dp[a] + fopen[k] + between;
            if candidate < dp[k] {
                dp[k] = candidate;
                prev[k] = Some(a);
            }
        }
    }
    // Close: charge clients right of the last open facility.
    let mut best = f64::INFINITY;
    let mut last = 0;
    for k in 0..m {
        let boundary = lower_bound(fpos[k]);
        let total = dp[k] + serve_all(fpos[k], boundary, n);
        if total < best {
            best = total;
            last = k;
        }
    }
    // Reconstruct.
    let mut open_sorted = vec![last];
    while let Some(p) = prev[*open_sorted.last().expect("non-empty")] {
        open_sorted.push(p);
    }
    let mut open: Vec<usize> = open_sorted.into_iter().map(|k| forder[k]).collect();
    open.sort_unstable();
    LineOptimum { cost: best, open }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use distfl_instance::{Cost, Instance};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds the dense Instance matching a line layout.
    fn line_instance(fpos: &[f64], opening: &[f64], cpos: &[f64]) -> Instance {
        let open: Vec<Cost> = opening.iter().map(|&f| Cost::new(f).unwrap()).collect();
        let costs: Vec<Vec<Cost>> = cpos
            .iter()
            .map(|&q| fpos.iter().map(|&p| Cost::new((p - q).abs()).unwrap()).collect())
            .collect();
        Instance::from_dense(open, costs).unwrap()
    }

    #[test]
    fn single_facility() {
        let got = solve_line(&[5.0], &[3.0], &[1.0, 6.0, 9.0]);
        // 3 + 4 + 1 + 4 = 12.
        assert!((got.cost - 12.0).abs() < 1e-9);
        assert_eq!(got.open, vec![0]);
    }

    #[test]
    fn two_facilities_split_at_the_midpoint() {
        // Facilities at 0 and 10 (cheap), clients at 1, 4, 6, 9.
        let got = solve_line(&[0.0, 10.0], &[1.0, 1.0], &[1.0, 4.0, 6.0, 9.0]);
        // Open both: 1+1 openings, connections 1+4+4+1 = 10; total 12.
        // Open one: 1 + (1+4+6+9) = 21 (left) or symmetric.
        assert!((got.cost - 12.0).abs() < 1e-9, "cost {}", got.cost);
        assert_eq!(got.open, vec![0, 1]);
    }

    #[test]
    fn expensive_second_facility_stays_closed() {
        let got = solve_line(&[0.0, 10.0], &[1.0, 100.0], &[1.0, 4.0, 6.0, 9.0]);
        assert_eq!(got.open, vec![0]);
        assert!((got.cost - 21.0).abs() < 1e-9);
    }

    #[test]
    fn matches_branch_and_bound_on_random_layouts() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..12 {
            let m = rng.gen_range(2..9);
            let n = rng.gen_range(1..14);
            let fpos: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..100.0)).collect();
            let opening: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..40.0)).collect();
            let cpos: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
            let dp = solve_line(&fpos, &opening, &cpos);
            let inst = line_instance(&fpos, &opening, &cpos);
            let bnb = exact::solve(&inst).unwrap();
            assert!(
                (dp.cost - bnb.cost.value()).abs() < 1e-6,
                "trial {trial}: dp {} vs bnb {}",
                dp.cost,
                bnb.cost.value()
            );
        }
    }

    #[test]
    fn open_set_realizes_the_claimed_cost() {
        let mut rng = StdRng::seed_from_u64(11);
        let fpos: Vec<f64> = (0..7).map(|_| rng.gen_range(0.0..50.0)).collect();
        let opening: Vec<f64> = (0..7).map(|_| rng.gen_range(1.0..20.0)).collect();
        let cpos: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..50.0)).collect();
        let dp = solve_line(&fpos, &opening, &cpos);
        // Recompute the cost of the returned open set directly.
        let opening_cost: f64 = dp.open.iter().map(|&i| opening[i]).sum();
        let connection: f64 = cpos
            .iter()
            .map(|&q| dp.open.iter().map(|&i| (fpos[i] - q).abs()).fold(f64::INFINITY, f64::min))
            .sum();
        assert!(
            (dp.cost - opening_cost - connection).abs() < 1e-6,
            "claimed {} vs realized {}",
            dp.cost,
            opening_cost + connection
        );
    }

    #[test]
    fn scales_to_large_instances() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = 200;
        let n = 5000;
        let fpos: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let opening: Vec<f64> = (0..m).map(|_| rng.gen_range(5.0..100.0)).collect();
        let cpos: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let dp = solve_line(&fpos, &opening, &cpos);
        assert!(dp.cost.is_finite() && dp.cost > 0.0);
        assert!(!dp.open.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn rejects_empty_clients() {
        let _ = solve_line(&[0.0], &[1.0], &[]);
    }
}
