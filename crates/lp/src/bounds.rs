//! Certified lower bounds on `OPT`.
//!
//! Measured approximation ratios are only meaningful against quantities
//! that are *provably* at most `OPT`. Three sources are combined here:
//!
//! 1. the trivial structural bound (`min_i f_i + Σ_j min_i c_ij`),
//! 2. dual fitting of any [`crate::DualSolution`] (weak duality),
//! 3. the exact optimum for instances with few facilities.
//!
//! Since every source is a valid lower bound, their maximum is too, and
//! ratios computed against it *over-estimate* the true approximation
//! ratio — conservative in the right direction.

use distfl_instance::Instance;

use crate::dual::DualSolution;
use crate::exact;

/// The structural bound `min_i f_i + Σ_j min_i c_ij`: any solution opens at
/// least one facility and connects every client no cheaper than its
/// cheapest link.
pub fn trivial_lower_bound(instance: &Instance) -> f64 {
    let min_opening = instance
        .facilities()
        .map(|i| instance.opening_cost(i).value())
        .fold(f64::INFINITY, f64::min);
    let connections: f64 = instance.clients().map(|j| instance.cheapest_link(j).1.value()).sum();
    min_opening + connections
}

/// How a [`certified_lower_bound`] was obtained (the strongest source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// The exact branch-and-bound optimum (the bound *is* `OPT`).
    Exact,
    /// Dual fitting of a supplied dual solution.
    DualFitting,
    /// The trivial structural bound.
    Trivial,
}

/// A lower bound on `OPT` together with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBound {
    /// The certified value (`≤ OPT`).
    pub value: f64,
    /// Which source produced it.
    pub source: BoundSource,
}

/// The best certified lower bound available: the exact optimum when the
/// instance has at most `exact_limit` facilities, otherwise the maximum of
/// the trivial bound and the dual-fitting bounds of all supplied duals.
pub fn certified_lower_bound(
    instance: &Instance,
    duals: &[&DualSolution],
    exact_limit: usize,
) -> LowerBound {
    if let Ok(opt) = exact::solve_with_limit(instance, exact_limit) {
        return LowerBound { value: opt.cost.value(), source: BoundSource::Exact };
    }
    let mut best =
        LowerBound { value: trivial_lower_bound(instance), source: BoundSource::Trivial };
    for dual in duals {
        let lb = dual.lower_bound(instance, crate::TOLERANCE);
        if lb > best.value {
            best = LowerBound { value: lb, source: BoundSource::DualFitting };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};
    use distfl_instance::{Cost, InstanceBuilder};

    fn fixture() -> Instance {
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(4.0).unwrap());
        let f1 = b.add_facility(Cost::new(9.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f0, Cost::new(1.0).unwrap()).unwrap();
        b.link(c0, f1, Cost::new(0.5).unwrap()).unwrap();
        b.link(c1, f0, Cost::new(2.0).unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn trivial_bound_value() {
        // min f = 4; min links: 0.5 + 2.0.
        assert!((trivial_lower_bound(&fixture()) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn trivial_bound_is_below_opt_on_random_instances() {
        for seed in 0..10 {
            let inst = UniformRandom::new(6, 12).unwrap().generate(seed).unwrap();
            let opt = exact::solve(&inst).unwrap().cost.value();
            let lb = trivial_lower_bound(&inst);
            assert!(lb <= opt + 1e-9, "seed {seed}: trivial {lb} above OPT {opt}");
        }
    }

    #[test]
    fn certified_prefers_exact_when_available() {
        let inst = fixture();
        let lb = certified_lower_bound(&inst, &[], 10);
        assert_eq!(lb.source, BoundSource::Exact);
        // OPT: open f0, connect both: 4 + 1 + 2 = 7.
        assert!((lb.value - 7.0).abs() < 1e-12);
    }

    #[test]
    fn certified_falls_back_to_best_of_trivial_and_dual() {
        let inst = fixture();
        // Forbid exact (limit 1 < 2 facilities).
        let weak = DualSolution::new(vec![0.0, 0.0]);
        let lb = certified_lower_bound(&inst, &[&weak], 1);
        assert_eq!(lb.source, BoundSource::Trivial);
        assert!((lb.value - 6.5).abs() < 1e-12);

        // A dual strong enough to beat the trivial bound:
        // alpha = (3.5, 3.5): payment(f0) = 2.5 + 1.5 = 4 <= 4;
        // payment(f1) = 3.0 <= 9. Feasible, value 7.
        let strong = DualSolution::new(vec![3.5, 3.5]);
        let lb = certified_lower_bound(&inst, &[&weak, &strong], 1);
        assert_eq!(lb.source, BoundSource::DualFitting);
        assert!((lb.value - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dual_fitting_bound_never_exceeds_exact() {
        for seed in 0..6 {
            let inst = UniformRandom::new(5, 9).unwrap().generate(seed).unwrap();
            let opt = exact::solve(&inst).unwrap().cost.value();
            // An aggressive (likely infeasible) dual still certifies once
            // scaled.
            let dual = DualSolution::new(vec![1e3; 9]);
            let lb = dual.lower_bound(&inst, crate::TOLERANCE);
            assert!(lb <= opt + 1e-6, "seed {seed}: dual lb {lb} above OPT {opt}");
        }
    }
}
