//! Dual solutions and dual-fitting lower bounds.

use serde::{Deserialize, Serialize};

use distfl_instance::{ClientId, Instance};

/// A dual point `α` of the facility-location LP.
///
/// The dual constraint for facility `i` is
/// `payment_i(α) = Σ_j max(0, α_j − c_ij) ≤ f_i`. Arbitrary dual points
/// (such as the ones the distributed dual-ascent algorithm produces) may
/// violate it; [`DualSolution::feasibility_factor`] quantifies by how much,
/// and `Σ_j α_j / factor` is then a valid lower bound on `OPT` — the
/// *dual-fitting* argument at the heart of the paper's analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualSolution {
    alpha: Vec<f64>,
}

impl DualSolution {
    /// Wraps raw dual values.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or not finite.
    pub fn new(alpha: Vec<f64>) -> Self {
        assert!(
            alpha.iter().all(|a| a.is_finite() && *a >= 0.0),
            "dual values must be finite and non-negative"
        );
        DualSolution { alpha }
    }

    /// The dual variables, indexed by client.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The dual variable of one client.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn alpha_of(&self, j: ClientId) -> f64 {
        self.alpha[j.index()]
    }

    /// The dual objective `Σ_j α_j`.
    pub fn value(&self) -> f64 {
        self.alpha.iter().sum()
    }

    /// The payment this dual point offers facility `i`:
    /// `Σ_j max(0, α_j − c_ij)` over `i`'s links.
    ///
    /// # Panics
    ///
    /// Panics if the dual's length does not match `instance`.
    pub fn payment(&self, instance: &Instance, i: distfl_instance::FacilityId) -> f64 {
        assert_eq!(self.alpha.len(), instance.num_clients(), "dual/instance shape mismatch");
        instance.facility_links(i).iter().map(|(j, c)| (self.alpha[j as usize] - c).max(0.0)).sum()
    }

    /// The smallest `v ≥ 1` such that `α / v` is dual-feasible.
    ///
    /// For facilities with positive opening cost this is
    /// `payment_i / f_i`; for zero-opening-cost facilities it is the
    /// largest `α_j / c_ij` over paying links (`f64::INFINITY` if a client
    /// pays over a zero-cost link, in which case no scaling helps).
    pub fn feasibility_factor(&self, instance: &Instance, tolerance: f64) -> f64 {
        let mut factor = 1.0f64;
        for i in instance.facilities() {
            let f = instance.opening_cost(i).value();
            if f > 0.0 {
                factor = factor.max(self.payment(instance, i) / f);
            } else {
                for (j, c) in instance.facility_links(i).iter() {
                    let a = self.alpha[j as usize];
                    if a > c + tolerance {
                        if c > 0.0 {
                            factor = factor.max(a / c);
                        } else {
                            return f64::INFINITY;
                        }
                    }
                }
            }
        }
        factor
    }

    /// Whether this point is dual-feasible up to an additive tolerance on
    /// each constraint.
    pub fn is_feasible(&self, instance: &Instance, tolerance: f64) -> bool {
        instance
            .facilities()
            .all(|i| self.payment(instance, i) <= instance.opening_cost(i).value() + tolerance)
    }

    /// A certified lower bound on `OPT` by dual fitting: the dual value
    /// scaled by the feasibility factor (weak duality), or 0 if no finite
    /// scaling exists.
    pub fn lower_bound(&self, instance: &Instance, tolerance: f64) -> f64 {
        let factor = self.feasibility_factor(instance, tolerance);
        if factor.is_finite() {
            self.value() / factor
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::{Cost, FacilityId, InstanceBuilder};

    fn inst() -> Instance {
        // f0: opening 3, serves both clients at cost 1.
        // f1: opening 0, serves client 1 at cost 2.
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(3.0).unwrap());
        let f1 = b.add_facility(Cost::ZERO);
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f0, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f0, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f1, Cost::new(2.0).unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn payment_and_feasibility() {
        let inst = inst();
        let dual = DualSolution::new(vec![2.0, 2.0]);
        // payment(f0) = (2-1) + (2-1) = 2 <= 3.
        assert!((dual.payment(&inst, FacilityId::new(0)) - 2.0).abs() < 1e-12);
        // payment(f1) = max(0, 2-2) = 0 <= 0.
        assert_eq!(dual.payment(&inst, FacilityId::new(1)), 0.0);
        assert!(dual.is_feasible(&inst, 1e-9));
        assert_eq!(dual.feasibility_factor(&inst, 1e-9), 1.0);
        assert!((dual.lower_bound(&inst, 1e-9) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_dual_is_scaled() {
        let inst = inst();
        let dual = DualSolution::new(vec![4.0, 4.0]);
        // payment(f0) = 3+3 = 6 > 3 -> factor >= 2.
        // f1 has opening 0 and alpha_1=4 > c=2 -> factor >= 2.
        let factor = dual.feasibility_factor(&inst, 1e-9);
        assert!((factor - 2.0).abs() < 1e-12, "factor {factor}");
        assert!(!dual.is_feasible(&inst, 1e-9));
        // Scaled bound: 8 / 2 = 4; and indeed OPT here is 3 + 1 + 1 = 5 >= 4.
        assert!((dual.lower_bound(&inst, 1e-9) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_link_on_free_facility_degenerates() {
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::ZERO);
        let g = b.add_facility(Cost::new(1.0).unwrap());
        let c = b.add_client();
        b.link(c, f, Cost::ZERO).unwrap();
        b.link(c, g, Cost::new(1.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let dual = DualSolution::new(vec![0.5]);
        assert_eq!(dual.feasibility_factor(&inst, 1e-9), f64::INFINITY);
        assert_eq!(dual.lower_bound(&inst, 1e-9), 0.0);
    }

    #[test]
    fn lower_bound_is_below_any_feasible_solution() {
        // Weak duality smoke test on the fixture.
        let inst = inst();
        let dual = DualSolution::new(vec![10.0, 7.0]);
        let lb = dual.lower_bound(&inst, 1e-9);
        // OPT = open f0 (3) + 1 + 1 = 5.
        assert!(lb <= 5.0 + 1e-9, "lb {lb} exceeds OPT");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_alpha() {
        let _ = DualSolution::new(vec![-1.0]);
    }
}
