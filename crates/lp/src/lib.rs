//! # distfl-lp
//!
//! LP-relaxation machinery for uncapacitated facility location, used as the
//! *ground truth* layer of the `distfl` reproduction: every measured
//! approximation ratio in the experiment harness is relative to a
//! **certified lower bound** produced here.
//!
//! The LP relaxation and its dual (the objects the PODC 2005 analysis lives
//! in):
//!
//! ```text
//! min  Σ_i f_i·y_i + Σ_ij c_ij·x_ij       max  Σ_j α_j
//! s.t. Σ_i x_ij ≥ 1          ∀j           s.t. Σ_j max(0, α_j − c_ij) ≤ f_i  ∀i
//!      x_ij ≤ y_i            ∀i,j              α_j ≥ 0
//!      x, y ≥ 0
//! ```
//!
//! Contents:
//!
//! * [`FractionalSolution`] — a primal point with feasibility checking and
//!   cost evaluation,
//! * [`DualSolution`] — a dual point; any dual point scaled by its
//!   feasibility factor yields a lower bound on `OPT` by weak duality,
//! * [`bounds`] — trivial, dual-fitting, and combined certified bounds,
//! * [`exact`] — a branch-and-bound solver computing the true optimum for
//!   instances with few facilities (the denominator for exact measured
//!   ratios),
//! * [`rounding`] — a sequential reference implementation of randomized
//!   rounding, used to cross-validate the distributed rounding stage,
//! * [`flow`] — an exact min-cost-flow solver (the transportation
//!   subproblem of hard-capacitated assignment),
//! * [`mod@line`] — an exact polynomial-time DP for line-metric instances
//!   (the exact oracle at sizes beyond branch-and-bound).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod dual;
pub mod exact;
pub mod flow;
pub mod line;
mod primal;
pub mod rounding;

pub use dual::DualSolution;
pub use primal::{FractionalSolution, PrimalViolation};

/// Default numeric tolerance for feasibility checks.
pub const TOLERANCE: f64 = 1e-9;
