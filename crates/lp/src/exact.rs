//! Exact optimum via branch-and-bound over facility subsets.
//!
//! For a fixed open set `S`, the optimal assignment is each client's
//! cheapest link into `S`, so the search space is the `2^m` facility
//! subsets. With an admissible bound (current opening cost plus, per
//! client, the cheapest link among open-or-undecided facilities) and
//! best-first pruning, instances with `m ≤ ~24` solve quickly — these are
//! the denominators for the *exact* measured approximation ratios in the
//! experiment harness.

use distfl_instance::{Cost, FacilityId, Instance, Solution};

/// Errors from the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExactError {
    /// The instance has more facilities than `limit`, so exhaustive search
    /// was refused.
    TooManyFacilities {
        /// Facilities in the instance.
        facilities: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::TooManyFacilities { facilities, limit } => write!(
                f,
                "exact solver refused: {facilities} facilities exceeds the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

/// Default facility-count limit for [`solve`].
pub const DEFAULT_LIMIT: usize = 24;

/// An exact optimum with its certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// An optimal solution.
    pub solution: Solution,
    /// Its cost (the true `OPT`).
    pub cost: Cost,
    /// Number of branch-and-bound nodes explored (diagnostics).
    pub nodes_explored: u64,
}

/// Computes the exact optimum, refusing instances with more than
/// [`DEFAULT_LIMIT`] facilities.
///
/// # Errors
///
/// Returns [`ExactError::TooManyFacilities`] for oversized instances.
pub fn solve(instance: &Instance) -> Result<Optimum, ExactError> {
    solve_with_limit(instance, DEFAULT_LIMIT)
}

/// Computes the exact optimum with an explicit facility-count limit.
///
/// # Errors
///
/// Returns [`ExactError::TooManyFacilities`] for oversized instances.
pub fn solve_with_limit(instance: &Instance, limit: usize) -> Result<Optimum, ExactError> {
    let m = instance.num_facilities();
    if m > limit {
        return Err(ExactError::TooManyFacilities { facilities: m, limit });
    }
    let n = instance.num_clients();

    // Branch order: facilities sorted by descending "attractiveness"
    // (number of clients for which they are the cheapest link), so good
    // incumbents are found early and pruning bites.
    let mut order: Vec<FacilityId> = instance.facilities().collect();
    let mut cheapest_count = vec![0usize; m];
    for j in instance.clients() {
        cheapest_count[instance.cheapest_link(j).0.index()] += 1;
    }
    order.sort_by_key(|i| std::cmp::Reverse(cheapest_count[i.index()]));

    // suffix_min[k][j]: cheapest link of client j among order[k..] (f64,
    // INFINITY if none). suffix_min[m][j] = INFINITY.
    let mut suffix_min = vec![vec![f64::INFINITY; n]; m + 1];
    for k in (0..m).rev() {
        let i = order[k];
        let (head, tail) = suffix_min.split_at_mut(k + 1);
        head[k].clone_from(&tail[0]);
        for (j, c) in instance.facility_links(i).iter() {
            let slot = &mut suffix_min[k][j as usize];
            *slot = slot.min(c);
        }
    }

    let mut search = Search {
        instance,
        order: &order,
        suffix_min: &suffix_min,
        best_cost: f64::INFINITY,
        best_open: Vec::new(),
        cur_open: Vec::new(),
        cur_best_link: vec![f64::INFINITY; n],
        nodes: 0,
    };
    // Seed the incumbent with "open everything" so pruning has a target.
    let all_open: Vec<FacilityId> = instance.facilities().collect();
    if let Some(cost) = open_set_cost(instance, &all_open) {
        search.best_cost = cost;
        search.best_open = all_open;
    }
    search.recurse(0, 0.0);

    let open = std::mem::take(&mut search.best_open);
    debug_assert!(search.best_cost.is_finite(), "instances are feasible by invariant");
    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            // First-win strict `<` over the id-sorted row = the
            // `(cost, facility id)`-lexicographic minimum.
            let mut best: Option<(u32, f64)> = None;
            for (i, c) in instance.client_links(j).iter() {
                if open.contains(&FacilityId::new(i)) && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((i, c));
                }
            }
            FacilityId::new(best.expect("optimal open set covers every client").0)
        })
        .collect();
    let solution =
        Solution::from_assignment(instance, assignment).expect("optimal assignment is feasible");
    let cost = solution.cost(instance);
    Ok(Optimum { solution, cost, nodes_explored: search.nodes })
}

/// Cost of opening exactly `open` (None if some client is uncovered).
fn open_set_cost(instance: &Instance, open: &[FacilityId]) -> Option<f64> {
    let mut total: f64 = open.iter().map(|&i| instance.opening_cost(i).value()).sum();
    for j in instance.clients() {
        let best = instance
            .client_links(j)
            .iter()
            .filter(|&(i, _)| open.contains(&FacilityId::new(i)))
            .map(|(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return None;
        }
        total += best;
    }
    Some(total)
}

struct Search<'a> {
    instance: &'a Instance,
    order: &'a [FacilityId],
    suffix_min: &'a [Vec<f64>],
    best_cost: f64,
    best_open: Vec<FacilityId>,
    cur_open: Vec<FacilityId>,
    cur_best_link: Vec<f64>,
    nodes: u64,
}

impl Search<'_> {
    /// Explores decisions for `order[k..]` given accumulated opening cost.
    fn recurse(&mut self, k: usize, opening_so_far: f64) {
        self.nodes += 1;
        // Admissible bound: opening so far plus each client's cheapest link
        // among already-open or still-undecided facilities.
        let mut bound = opening_so_far;
        for (j, &cur) in self.cur_best_link.iter().enumerate() {
            let reachable = cur.min(self.suffix_min[k][j]);
            if !reachable.is_finite() {
                return; // some client can never be covered on this branch
            }
            bound += reachable;
            if bound >= self.best_cost {
                return;
            }
        }

        if k == self.order.len() {
            // All decided; bound equals the true cost of this leaf.
            if bound < self.best_cost {
                self.best_cost = bound;
                self.best_open = self.cur_open.clone();
            }
            return;
        }

        let i = self.order[k];

        // Branch 1: open facility i.
        let saved: Vec<(usize, f64)> = self
            .instance
            .facility_links(i)
            .iter()
            .filter_map(|(j, c)| {
                let slot = self.cur_best_link[j as usize];
                (c < slot).then(|| {
                    self.cur_best_link[j as usize] = c;
                    (j as usize, slot)
                })
            })
            .collect();
        self.cur_open.push(i);
        self.recurse(k + 1, opening_so_far + self.instance.opening_cost(i).value());
        self.cur_open.pop();
        for &(j, old) in saved.iter().rev() {
            self.cur_best_link[j] = old;
        }

        // Branch 2: keep facility i closed.
        self.recurse(k + 1, opening_so_far);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{
        AdversarialGreedy, Euclidean, InstanceGenerator, UniformRandom,
    };
    use distfl_instance::{Cost, InstanceBuilder};

    #[test]
    fn trivial_single_facility() {
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(5.0).unwrap());
        let c = b.add_client();
        b.link(c, f, Cost::new(2.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let opt = solve(&inst).unwrap();
        assert_eq!(opt.cost.value(), 7.0);
        assert_eq!(opt.solution.num_open(), 1);
    }

    #[test]
    fn picks_cheaper_of_two_structures() {
        // Opening both facilities costs 2+2=4 with connections 0;
        // opening only f0 costs 2 + 0 + 3 = 5. Optimal: open both (cost 4).
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(2.0).unwrap());
        let f1 = b.add_facility(Cost::new(2.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f0, Cost::ZERO).unwrap();
        b.link(c0, f1, Cost::new(3.0).unwrap()).unwrap();
        b.link(c1, f1, Cost::ZERO).unwrap();
        b.link(c1, f0, Cost::new(3.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let opt = solve(&inst).unwrap();
        assert_eq!(opt.cost.value(), 4.0);
        assert_eq!(opt.solution.num_open(), 2);
    }

    #[test]
    fn adversarial_optimum_is_the_hub() {
        let gen = AdversarialGreedy::new(10).unwrap();
        let inst = gen.generate(0).unwrap();
        let opt = solve(&inst).unwrap();
        assert!((opt.cost.value() - gen.optimal_cost()).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..8 {
            let inst = UniformRandom::new(6, 10).unwrap().generate(seed).unwrap();
            let opt = solve(&inst).unwrap();
            // Brute force over all 2^6 - 1 non-empty subsets.
            let mut best = f64::INFINITY;
            for mask in 1u32..(1 << 6) {
                let open: Vec<FacilityId> = (0..6)
                    .filter(|b| mask & (1 << b) != 0)
                    .map(|b| FacilityId::new(b as u32))
                    .collect();
                if let Some(cost) = open_set_cost(&inst, &open) {
                    best = best.min(cost);
                }
            }
            assert!(
                (opt.cost.value() - best).abs() < 1e-9,
                "seed {seed}: bnb {} vs brute {best}",
                opt.cost.value()
            );
        }
    }

    #[test]
    fn solution_is_feasible_and_assignment_optimal() {
        let inst = Euclidean::new(8, 25).unwrap().generate(3).unwrap();
        let opt = solve(&inst).unwrap();
        opt.solution.check_feasible(&inst).unwrap();
        // Reassigning greedily must not improve an optimal solution.
        let re = opt.solution.reassign_greedily(&inst);
        assert!((re.cost(&inst).value() - opt.cost.value()).abs() < 1e-9);
    }

    #[test]
    fn refuses_oversized_instances() {
        let inst = UniformRandom::new(30, 5).unwrap().generate(0).unwrap();
        assert!(matches!(solve(&inst), Err(ExactError::TooManyFacilities { .. })));
        assert!(solve_with_limit(&inst, 30).is_ok());
    }

    #[test]
    fn pruning_explores_fewer_nodes_than_exhaustive() {
        let inst = UniformRandom::new(12, 20).unwrap().generate(1).unwrap();
        let opt = solve(&inst).unwrap();
        assert!(
            opt.nodes_explored < (1 << 13),
            "explored {} nodes, exhaustive would be {}",
            opt.nodes_explored,
            1 << 13
        );
    }
}
