//! Minimum-cost flow (successive shortest paths with potentials).
//!
//! The transportation subproblem of capacitated facility location — given
//! an open set, assign clients optimally under hard capacities — is a
//! min-cost flow. This is a compact, exact solver for integer capacities
//! and non-negative real costs: Dijkstra with Johnson potentials per
//! augmentation, so no negative-cycle machinery is needed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of an arc returned by [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
    cost: f64,
    /// Index of the reverse arc.
    rev: usize,
}

/// A directed flow network with integer capacities and non-negative real
/// costs.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// Per-node outgoing arc lists (indices into a shared arena layout:
    /// `graph[v][k]`).
    graph: Vec<Vec<Arc>>,
}

impl FlowNetwork {
    /// A network with `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        FlowNetwork { graph: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Adds an arc `from → to` with the given capacity and cost; a zero
    /// capacity reverse arc is added automatically.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, negative capacity, or a
    /// negative/non-finite cost.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: f64) -> EdgeId {
        assert!(from < self.graph.len() && to < self.graph.len(), "endpoint out of range");
        assert!(cap >= 0, "capacity must be non-negative");
        assert!(cost.is_finite() && cost >= 0.0, "cost must be finite and non-negative");
        let from_idx = self.graph[from].len();
        let to_idx = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(Arc { to, cap, cost, rev: to_idx });
        self.graph[to].push(Arc { to: from, cap: 0, cost: -cost, rev: from_idx });
        EdgeId(from * (1 << 32) + from_idx)
    }

    /// The flow pushed through an arc (capacity consumed on the forward
    /// arc = capacity accrued on its reverse).
    pub fn flow_on(&self, edge: EdgeId) -> i64 {
        let from = edge.0 >> 32;
        let idx = edge.0 & ((1 << 32) - 1);
        let arc = &self.graph[from][idx];
        self.graph[arc.to][arc.rev].cap
    }

    /// Sends up to `target` units from `source` to `sink` at minimum
    /// cost. Returns `(flow sent, total cost)`; the flow sent is less than
    /// `target` iff the network saturates first.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    pub fn min_cost_flow(&mut self, source: usize, sink: usize, target: i64) -> (i64, f64) {
        assert!(source < self.graph.len() && sink < self.graph.len(), "endpoint out of range");
        let n = self.graph.len();
        let mut potential = vec![0.0f64; n];
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;

        while total_flow < target {
            // Dijkstra with potentials.
            let mut dist = vec![f64::INFINITY; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (node, arc idx)
            dist[source] = 0.0;
            let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
            heap.push(Reverse((OrdF64(0.0), source)));
            while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
                if d > dist[u] + 1e-12 {
                    continue;
                }
                for (k, arc) in self.graph[u].iter().enumerate() {
                    if arc.cap <= 0 {
                        continue;
                    }
                    let nd = d + arc.cost + potential[u] - potential[arc.to];
                    if nd + 1e-12 < dist[arc.to] {
                        dist[arc.to] = nd;
                        prev[arc.to] = Some((u, k));
                        heap.push(Reverse((OrdF64(nd), arc.to)));
                    }
                }
            }
            if !dist[sink].is_finite() {
                break; // saturated
            }
            for v in 0..n {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut bottleneck = target - total_flow;
            let mut v = sink;
            while let Some((u, k)) = prev[v] {
                bottleneck = bottleneck.min(self.graph[u][k].cap);
                v = u;
            }
            // Apply.
            let mut v = sink;
            while let Some((u, k)) = prev[v] {
                let rev = self.graph[u][k].rev;
                self.graph[u][k].cap -= bottleneck;
                self.graph[v][rev].cap += bottleneck;
                total_cost += self.graph[u][k].cost * bottleneck as f64;
                v = u;
            }
            total_flow += bottleneck;
        }
        (total_flow, total_cost)
    }
}

/// Total-ordered f64 for the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 5, 1.0);
        net.add_edge(1, 2, 5, 2.0);
        let (flow, cost) = net.min_cost_flow(0, 2, 4);
        assert_eq!(flow, 4);
        assert!((cost - 12.0).abs() < 1e-9);
        assert_eq!(net.flow_on(e), 4);
    }

    #[test]
    fn prefers_the_cheap_route_then_spills() {
        // Two parallel routes 0->1->3 (cost 1+1, cap 2) and 0->2->3
        // (cost 3+3, cap 10). Sending 5 units: 2 cheap + 3 expensive.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2, 1.0);
        net.add_edge(1, 3, 2, 1.0);
        net.add_edge(0, 2, 10, 3.0);
        net.add_edge(2, 3, 10, 3.0);
        let (flow, cost) = net.min_cost_flow(0, 3, 5);
        assert_eq!(flow, 5);
        assert!((cost - (2.0 * 2.0 + 3.0 * 6.0)).abs() < 1e-9);
    }

    #[test]
    fn saturation_is_reported() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3, 1.0);
        let (flow, _) = net.min_cost_flow(0, 1, 10);
        assert_eq!(flow, 3);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // The classic case where a later augmentation must undo part of an
        // earlier one. 4 nodes: s=0, a=1, b=2, t=3.
        // s->a (1, 1), s->b (1, 10), a->b (1, 0.5), a->t (1, 10), b->t (1, 1).
        // 2 units: optimal is s->a->b->t (2.5) + s->b? b->t full...
        // first path s->a->b->t cost 2.5; second s->b->t blocked (b->t cap
        // 1 used) -> must go s->b, then b->a via residual? Check optimum by
        // exhaustive reasoning: total min-cost 2-flow = s->a->t + s->b->t
        // = 11 + 11 = wait: s->a(1)+a->t(10) = 11; s->b(10)+b->t(1) = 11;
        // versus s->a->b->t = 2.5 then s->b(10) + residual b->a(-0.5) +
        // a->t(10) = 19.5 -> total 22. Optimum is 22? No: 11 + 11 = 22 as
        // well. Both routings cost 22 in total.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 1.0);
        net.add_edge(0, 2, 1, 10.0);
        net.add_edge(1, 2, 1, 0.5);
        net.add_edge(1, 3, 1, 10.0);
        net.add_edge(2, 3, 1, 1.0);
        let (flow, cost) = net.min_cost_flow(0, 3, 2);
        assert_eq!(flow, 2);
        assert!((cost - 22.0).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn transportation_matches_brute_force() {
        // 2 suppliers x 3 consumers, unit demands, supplier capacities 2/1.
        let costs = [[4.0, 1.0, 2.0], [2.0, 3.0, 3.0]];
        let caps = [2i64, 1];
        // Flow model: s=0, suppliers 1..2, consumers 3..5, t=6.
        let mut net = FlowNetwork::new(7);
        for (i, &cap) in caps.iter().enumerate() {
            net.add_edge(0, 1 + i, cap, 0.0);
        }
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                net.add_edge(1 + i, 3 + j, 1, c);
            }
        }
        for j in 0..3 {
            net.add_edge(3 + j, 6, 1, 0.0);
        }
        let (flow, cost) = net.min_cost_flow(0, 6, 3);
        assert_eq!(flow, 3);
        // Brute force over supplier assignments respecting caps.
        let mut best = f64::INFINITY;
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let pick = [a, b, c];
                    let load0 = pick.iter().filter(|&&p| p == 0).count() as i64;
                    let load1 = 3 - load0;
                    if load0 <= caps[0] && load1 <= caps[1] {
                        let total: f64 = pick.iter().enumerate().map(|(j, &p)| costs[p][j]).sum();
                        best = best.min(total);
                    }
                }
            }
        }
        assert!((cost - best).abs() < 1e-9, "flow {cost} vs brute {best}");
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn rejects_negative_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1, 1.0);
    }

    #[test]
    #[should_panic(expected = "cost must be finite")]
    fn rejects_negative_cost() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1, -1.0);
    }
}
